#include "obs/event_log.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <string>
#include <string_view>

#include "common/annotated_mutex.h"
#include "common/contracts.h"
#include "common/json_writer.h"
#include "obs/trace.h"

namespace us3d::obs {

namespace {

bool env_enables_events() {
  const char* v = std::getenv("US3D_EVENTS");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true";
}

constexpr std::size_t kDefaultEventCapacity = 4096;

}  // namespace

const char* severity_name(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kDebug:
      return "debug";
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "info";
}

// ---------------------------------------------------------------------------
// EventRing
// ---------------------------------------------------------------------------

// The SpanRing seqlock, field-for-field (see trace.cpp for the full proof
// sketch): the owner publishes record number w into slot w % capacity with
// seq odd (2w+1) while the payload is being replaced and even (2(w+1)) once
// complete; a reader that sees seq == 2(i+1) before AND after copying the
// payload got an untorn record i, anything else counts as dropped. Payload
// fields are individually atomic (relaxed) so concurrent overwrite is
// well-defined under TSan; the fences order them against the seq edges.
struct EventRing::Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> t_ns{0};
  std::atomic<std::int32_t> severity{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> session{-1};
  std::atomic<std::int64_t> sequence{-1};
  std::atomic<const char*> detail{nullptr};
  std::atomic<const char*> arg1_name{nullptr};
  std::atomic<std::int64_t> arg1{0};
  std::atomic<const char*> arg2_name{nullptr};
  std::atomic<std::int64_t> arg2{0};
};

EventRing::EventRing(std::size_t capacity)
    : capacity_(capacity), slots_(new Slot[capacity]) {
  US3D_EXPECTS(capacity > 0);
}

EventRing::~EventRing() = default;

void EventRing::push(const EventRecord& r) {
  const std::uint64_t w = writes_.load(std::memory_order_relaxed);
  Slot& slot = slots_[w % capacity_];
  slot.seq.store(2 * w + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.t_ns.store(r.t_ns, std::memory_order_relaxed);
  slot.severity.store(static_cast<std::int32_t>(r.severity),
                      std::memory_order_relaxed);
  slot.name.store(r.name, std::memory_order_relaxed);
  slot.session.store(r.session, std::memory_order_relaxed);
  slot.sequence.store(r.sequence, std::memory_order_relaxed);
  slot.detail.store(r.detail, std::memory_order_relaxed);
  slot.arg1_name.store(r.arg1_name, std::memory_order_relaxed);
  slot.arg1.store(r.arg1, std::memory_order_relaxed);
  slot.arg2_name.store(r.arg2_name, std::memory_order_relaxed);
  slot.arg2.store(r.arg2, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(2 * (w + 1), std::memory_order_relaxed);
  writes_.store(w + 1, std::memory_order_release);
}

std::uint64_t EventRing::snapshot(std::vector<EventRecord>& out) const {
  const std::uint64_t writes = writes_.load(std::memory_order_acquire);
  const std::uint64_t base = base_.load(std::memory_order_relaxed);
  std::uint64_t first = writes > capacity_ ? writes - capacity_ : 0;
  if (first < base) first = base;
  std::uint64_t dropped = first - base;  // overwritten before we looked
  for (std::uint64_t i = first; i < writes; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint64_t want = 2 * (i + 1);
    if (slot.seq.load(std::memory_order_acquire) != want) {
      ++dropped;  // already claimed by a newer record
      continue;
    }
    EventRecord r;
    r.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    r.severity = static_cast<EventSeverity>(
        slot.severity.load(std::memory_order_relaxed));
    r.name = slot.name.load(std::memory_order_relaxed);
    r.session = slot.session.load(std::memory_order_relaxed);
    r.sequence = slot.sequence.load(std::memory_order_relaxed);
    r.detail = slot.detail.load(std::memory_order_relaxed);
    r.arg1_name = slot.arg1_name.load(std::memory_order_relaxed);
    r.arg1 = slot.arg1.load(std::memory_order_relaxed);
    r.arg2_name = slot.arg2_name.load(std::memory_order_relaxed);
    r.arg2 = slot.arg2.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) {
      ++dropped;  // overwritten while we were reading
      continue;
    }
    out.push_back(r);
  }
  return dropped;
}

void EventRing::reset() {
  base_.store(writes_.load(std::memory_order_acquire),
              std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// EventSnapshot helpers
// ---------------------------------------------------------------------------

std::vector<EventRecord> EventSnapshot::last(std::size_t n) const {
  if (n >= events.size()) return events;
  return std::vector<EventRecord>(events.end() - static_cast<std::ptrdiff_t>(n),
                                  events.end());
}

const EventRecord* EventSnapshot::find(const char* name) const {
  const std::string_view want(name);
  for (const EventRecord& r : events) {
    if (r.name != nullptr && std::string_view(r.name) == want) return &r;
  }
  return nullptr;
}

std::size_t EventSnapshot::count(const char* name) const {
  const std::string_view want(name);
  std::size_t n = 0;
  for (const EventRecord& r : events) {
    if (r.name != nullptr && std::string_view(r.name) == want) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------------

struct EventLog::ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity) : ring(capacity) {}

  EventRing ring;  // seqlock: atomics + fences, no mutex (see event_log.h)
  std::atomic<bool> retired{false};
};

namespace {

/// The log registry, mirroring trace.cpp's CollectorState: `mutex` guards
/// the buffer roster and admission capacity; `enabled` is one relaxed
/// atomic load on the emit hot path.
struct EventLogState {
  Mutex mutex;
  std::vector<std::shared_ptr<EventLog::ThreadBuffer>> buffers
      US3D_GUARDED_BY(mutex);
  std::size_t thread_capacity US3D_GUARDED_BY(mutex) = kDefaultEventCapacity;
  std::atomic<bool> enabled{false};
};

// Leaked on purpose: worker threads may emit during static destruction.
EventLogState& log_state() {
  static EventLogState* s = [] {
    auto* st = new EventLogState();
    st->enabled.store(env_enables_events(), std::memory_order_relaxed);
    return st;
  }();
  return *s;
}

// Keeps this thread's buffer alive and flags it retired at thread exit so
// reset() can release buffers nobody will write to again. Rings stay
// readable after their thread dies: a post-mortem must still see events
// from joined stage threads.
struct EventThreadHandle {
  std::shared_ptr<EventLog::ThreadBuffer> buffer;
  ~EventThreadHandle() {
    if (buffer) buffer->retired.store(true, std::memory_order_release);
  }
};

thread_local EventThreadHandle t_event_handle;

}  // namespace

EventLog::EventLog() = default;

EventLog& EventLog::instance() {
  static EventLog log;
  (void)log_state();
  return log;
}

void EventLog::set_enabled(bool enabled) {
  log_state().enabled.store(enabled, std::memory_order_relaxed);
}

bool EventLog::enabled() const {
  return log_state().enabled.load(std::memory_order_relaxed);
}

void EventLog::set_thread_capacity(std::size_t events) {
  US3D_EXPECTS(events > 0);
  EventLogState& s = log_state();
  MutexLock lock(s.mutex);
  s.thread_capacity = events;
}

std::size_t EventLog::thread_capacity() const {
  EventLogState& s = log_state();
  MutexLock lock(s.mutex);
  return s.thread_capacity;
}

EventLog::ThreadBuffer& EventLog::buffer_for_this_thread() {
  if (!t_event_handle.buffer) {
    EventLogState& s = log_state();
    MutexLock lock(s.mutex);
    auto buffer = std::make_shared<ThreadBuffer>(s.thread_capacity);
    s.buffers.push_back(buffer);
    t_event_handle.buffer = std::move(buffer);
  }
  return *t_event_handle.buffer;
}

void EventLog::record(const EventRecord& record) {
  if (!enabled()) return;
  buffer_for_this_thread().ring.push(record);
}

EventSnapshot EventLog::collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    EventLogState& s = log_state();
    MutexLock lock(s.mutex);
    buffers = s.buffers;
  }
  EventSnapshot snap;
  for (const auto& buffer : buffers) {
    snap.dropped += buffer->ring.snapshot(snap.events);
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const EventRecord& a, const EventRecord& b) {
                     return a.t_ns < b.t_ns;
                   });
  return snap;
}

void EventLog::reset() {
  EventLogState& s = log_state();
  MutexLock lock(s.mutex);
  auto& buffers = s.buffers;
  for (const auto& buffer : buffers) buffer->ring.reset();
  buffers.erase(std::remove_if(buffers.begin(), buffers.end(),
                               [](const auto& b) {
                                 return b->retired.load(
                                     std::memory_order_acquire);
                               }),
                buffers.end());
}

void EventLog::write_events_json(std::ostream& os, std::size_t last_n) const {
  const EventSnapshot snap = collect();
  const std::vector<EventRecord> events =
      last_n == 0 ? snap.events : snap.last(last_n);
  JsonWriter w(os);
  w.begin_object()
      .kv("enabled", enabled())
      .kv("dropped", static_cast<std::int64_t>(snap.dropped))
      .kv("truncated_to", static_cast<std::int64_t>(last_n))
      .key("events")
      .begin_array();
  for (const EventRecord& r : events) {
    w.begin_object()
        .kv("t_ns", static_cast<std::int64_t>(r.t_ns))
        .kv("severity", severity_name(r.severity))
        .kv("name", r.name != nullptr ? r.name : "event");
    if (r.session >= 0) w.kv("session", r.session);
    if (r.sequence >= 0) w.kv("sequence", r.sequence);
    if (r.detail != nullptr) w.kv("detail", r.detail);
    if (r.arg1_name != nullptr) w.kv(r.arg1_name, r.arg1);
    if (r.arg2_name != nullptr) w.kv(r.arg2_name, r.arg2);
    w.end_object();
  }
  w.end_array().end_object();
}

// ---------------------------------------------------------------------------
// emit_event
// ---------------------------------------------------------------------------

void emit_event(EventSeverity severity, const char* name, std::int64_t session,
                std::int64_t sequence, const char* detail,
                const char* arg1_name, std::int64_t arg1,
                const char* arg2_name, std::int64_t arg2) {
  EventLog& log = EventLog::instance();
  if (!log.enabled()) return;
  EventRecord r;
  // Events share the trace epoch so a post-mortem lines them up with spans.
  r.t_ns = TraceCollector::instance().now_ns();
  r.severity = severity;
  r.name = name;
  r.session = session;
  r.sequence = sequence;
  r.detail = detail;
  r.arg1_name = arg1_name;
  r.arg1 = arg1;
  r.arg2_name = arg2_name;
  r.arg2 = arg2;
  log.record(r);
}

}  // namespace us3d::obs
