// Live service telemetry: a process-wide registry of named counters,
// gauges and fixed-bucket histograms that any thread can bump lock-free
// and any scraper can snapshot to JSON at any instant.
//
// Shape of the thing: the registry map (create / lookup / remove /
// snapshot) is under one mutex, but callers hold shared_ptrs to the
// metric nodes themselves and update those with plain atomics — the hot
// path (a queue updating its depth gauge, the service counting a shed)
// never touches the registry lock. Removing a metric from the registry
// only unlists it; in-flight holders keep their node alive and their
// updates simply stop being scraped.
//
// Consistency contract: each individual metric read is atomic, and a
// histogram snapshot is internally coherent to within in-flight
// observe() calls. Cross-metric invariants (the frame ledger) are NOT
// promised by the registry — the service exports those from one locked
// snapshot (SessionStats / ServiceStats), which is what makes
// `delivered + shed + dropped + refused <= submitted` scrape-safe.
#ifndef US3D_OBS_METRICS_H
#define US3D_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotated_mutex.h"

namespace us3d::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void increment(std::int64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, ring occupancy).
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t by) { value_.fetch_add(by, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: upper bounds chosen at construction, one
/// implicit overflow bucket, count/sum/min/max tracked alongside.
/// Quantiles interpolate linearly inside the winning bucket — the same
/// estimate-from-aggregates spirit as common/stats.h SampleQuantiles,
/// but O(buckets) memory with no per-sample storage.
class FixedHistogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending; samples
  /// above the last bound land in the overflow bucket.
  explicit FixedHistogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const;

  /// Estimated q-quantile (q in [0,1]); 0 when empty. Bucket-resolution
  /// accurate: exact only up to the bucket width around the true value.
  double quantile(double q) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Samples in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const;

  /// Exponential default for latency-in-seconds histograms: 100 µs to
  /// ~100 s, four buckets per decade.
  static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 wide
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

/// One registry's worth of metric values copied out at a single locked
/// pass over the name map (each value is then read with its own atomic
/// load — see the consistency contract above). This is the input to the
/// Prometheus exposition and the SLO watchdog's evaluation.
struct MetricsSnapshot {
  struct Histogram {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> buckets;  ///< upper_bounds.size()+1 wide
    std::int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };

  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram> histograms;
};

/// Name -> metric registry. Names are dot-paths by convention
/// ("service.sessions_admitted", "service.s3.input_queue_depth") so
/// per-session families can be removed by prefix when the session closes.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Create-or-get. Throws ContractViolation if `name` already names a
  /// metric of a different kind. histogram() with empty bounds uses
  /// FixedHistogram::default_latency_bounds(); bounds are fixed by the
  /// first creation and later calls just return the existing node.
  std::shared_ptr<Counter> counter(const std::string& name)
      US3D_EXCLUDES(mutex_);
  std::shared_ptr<Gauge> gauge(const std::string& name) US3D_EXCLUDES(mutex_);
  std::shared_ptr<FixedHistogram> histogram(const std::string& name,
                                            std::vector<double> upper_bounds =
                                                {}) US3D_EXCLUDES(mutex_);

  /// Lookup without create: nullptr when `name` is absent or names a
  /// metric of another kind. The watchdog evaluates against these so a
  /// typo'd SLO target reads "no data" instead of minting an empty node.
  std::shared_ptr<Counter> find_counter(const std::string& name) const
      US3D_EXCLUDES(mutex_);
  std::shared_ptr<Gauge> find_gauge(const std::string& name) const
      US3D_EXCLUDES(mutex_);
  std::shared_ptr<FixedHistogram> find_histogram(const std::string& name) const
      US3D_EXCLUDES(mutex_);

  /// Unlists a metric (holders keep their node). Returns entries removed.
  std::size_t remove(const std::string& name) US3D_EXCLUDES(mutex_);
  std::size_t remove_prefix(const std::string& prefix) US3D_EXCLUDES(mutex_);
  void clear() US3D_EXCLUDES(mutex_);
  std::size_t size() const US3D_EXCLUDES(mutex_);

  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with names sorted; readable back through us3d::parse_json.
  std::string snapshot_json() const US3D_EXCLUDES(mutex_);

  /// Structured equivalent of snapshot_json() for in-process consumers
  /// (Prometheus exposition, SLO evaluation).
  MetricsSnapshot snapshot() const US3D_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::shared_ptr<Counter> counter;
    std::shared_ptr<Gauge> gauge;
    std::shared_ptr<FixedHistogram> histogram;
  };

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ US3D_GUARDED_BY(mutex_);
};

}  // namespace us3d::obs

#endif  // US3D_OBS_METRICS_H
