#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <string_view>

#include "common/annotated_mutex.h"
#include "common/contracts.h"
#include "common/json_writer.h"

namespace us3d::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool env_enables_tracing() {
  const char* v = std::getenv("US3D_TRACE");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "on" || s == "ON" || s == "true";
}

constexpr std::size_t kDefaultThreadCapacity = 8192;

}  // namespace

// ---------------------------------------------------------------------------
// SpanRing
// ---------------------------------------------------------------------------

// Seqlock over atomic fields. The owner publishes record number w into slot
// w % capacity: seq goes odd (2w+1) while the payload is being replaced,
// then even (2(w+1)) once it is complete. A reader that sees seq == 2(i+1)
// before AND after reading the payload got an untorn copy of record i; any
// other observation means the slot was mid-overwrite and the record counts
// as dropped. Payload fields are individually atomic (relaxed) so the
// concurrent overwrite is well-defined for TSan, and the fences order them
// against the seq edges.
struct SpanRing::Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<std::uint64_t> t1_ns{0};
  std::atomic<const char*> arg1_name{nullptr};
  std::atomic<std::int64_t> arg1{0};
  std::atomic<const char*> arg2_name{nullptr};
  std::atomic<std::int64_t> arg2{0};
  std::atomic<const char*> sarg_name{nullptr};
  std::atomic<const char*> sarg{nullptr};
  std::atomic<const char*> sarg2_name{nullptr};
  std::atomic<const char*> sarg2{nullptr};
};

SpanRing::SpanRing(std::size_t capacity)
    : capacity_(capacity), slots_(new Slot[capacity]) {
  US3D_EXPECTS(capacity > 0);
}

SpanRing::~SpanRing() = default;

void SpanRing::push(const SpanRecord& r) {
  const std::uint64_t w = writes_.load(std::memory_order_relaxed);
  Slot& slot = slots_[w % capacity_];
  slot.seq.store(2 * w + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.name.store(r.name, std::memory_order_relaxed);
  slot.t0_ns.store(r.t0_ns, std::memory_order_relaxed);
  slot.t1_ns.store(r.t1_ns, std::memory_order_relaxed);
  slot.arg1_name.store(r.arg1_name, std::memory_order_relaxed);
  slot.arg1.store(r.arg1, std::memory_order_relaxed);
  slot.arg2_name.store(r.arg2_name, std::memory_order_relaxed);
  slot.arg2.store(r.arg2, std::memory_order_relaxed);
  slot.sarg_name.store(r.sarg_name, std::memory_order_relaxed);
  slot.sarg.store(r.sarg, std::memory_order_relaxed);
  slot.sarg2_name.store(r.sarg2_name, std::memory_order_relaxed);
  slot.sarg2.store(r.sarg2, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.seq.store(2 * (w + 1), std::memory_order_relaxed);
  writes_.store(w + 1, std::memory_order_release);
}

std::uint64_t SpanRing::snapshot(std::vector<SpanRecord>& out) const {
  const std::uint64_t writes = writes_.load(std::memory_order_acquire);
  const std::uint64_t base = base_.load(std::memory_order_relaxed);
  std::uint64_t first = writes > capacity_ ? writes - capacity_ : 0;
  if (first < base) first = base;
  std::uint64_t dropped = first - base;  // overwritten before we looked
  for (std::uint64_t i = first; i < writes; ++i) {
    const Slot& slot = slots_[i % capacity_];
    const std::uint64_t want = 2 * (i + 1);
    if (slot.seq.load(std::memory_order_acquire) != want) {
      ++dropped;  // already claimed by a newer record
      continue;
    }
    SpanRecord r;
    r.name = slot.name.load(std::memory_order_relaxed);
    r.t0_ns = slot.t0_ns.load(std::memory_order_relaxed);
    r.t1_ns = slot.t1_ns.load(std::memory_order_relaxed);
    r.arg1_name = slot.arg1_name.load(std::memory_order_relaxed);
    r.arg1 = slot.arg1.load(std::memory_order_relaxed);
    r.arg2_name = slot.arg2_name.load(std::memory_order_relaxed);
    r.arg2 = slot.arg2.load(std::memory_order_relaxed);
    r.sarg_name = slot.sarg_name.load(std::memory_order_relaxed);
    r.sarg = slot.sarg.load(std::memory_order_relaxed);
    r.sarg2_name = slot.sarg2_name.load(std::memory_order_relaxed);
    r.sarg2 = slot.sarg2.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) {
      ++dropped;  // overwritten while we were reading
      continue;
    }
    out.push_back(r);
  }
  return dropped;
}

void SpanRing::reset() {
  base_.store(writes_.load(std::memory_order_acquire),
              std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

struct TraceCollector::ThreadBuffer {
  ThreadBuffer(std::size_t capacity, std::uint64_t tid_in)
      : ring(capacity), tid(tid_in), name("thread-" + std::to_string(tid_in)) {}

  SpanRing ring;  // seqlock: atomics + fences, no mutex (see trace.h)
  std::uint64_t tid;
  /// Each buffer guards its own name rather than borrowing the registry
  /// lock: naming a thread and a collect() of other buffers never contend.
  mutable Mutex name_mutex;
  std::string name US3D_GUARDED_BY(name_mutex);
  std::atomic<bool> retired{false};
};

namespace {

/// The collector registry. `mutex` guards the buffer roster and its
/// admission parameters; `enabled` is a plain atomic read on the record
/// hot path, and `epoch_ns` is frozen inside the state() initializer
/// before any other thread can observe the object.
struct CollectorState {
  Mutex mutex;
  std::vector<std::shared_ptr<TraceCollector::ThreadBuffer>> buffers
      US3D_GUARDED_BY(mutex);
  std::uint64_t next_tid US3D_GUARDED_BY(mutex) = 1;
  std::size_t thread_capacity US3D_GUARDED_BY(mutex) = kDefaultThreadCapacity;
  std::atomic<bool> enabled{false};
  std::uint64_t epoch_ns = 0;
};

// Leaked on purpose: worker threads may record during static destruction.
CollectorState& state() {
  static CollectorState* s = [] {
    auto* st = new CollectorState();
    st->enabled.store(env_enables_tracing(), std::memory_order_relaxed);
    st->epoch_ns = steady_now_ns();
    return st;
  }();
  return *s;
}

// Keeps this thread's buffer alive and flags it retired at thread exit so
// reset() can release buffers nobody will write to again.
struct ThreadHandle {
  std::shared_ptr<TraceCollector::ThreadBuffer> buffer;
  ~ThreadHandle() {
    if (buffer) buffer->retired.store(true, std::memory_order_release);
  }
};

thread_local ThreadHandle t_handle;

}  // namespace

TraceCollector::TraceCollector() = default;

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  (void)state();
  return collector;
}

void TraceCollector::set_enabled(bool enabled) {
  state().enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceCollector::enabled() const {
  return state().enabled.load(std::memory_order_relaxed);
}

void TraceCollector::set_thread_capacity(std::size_t spans) {
  US3D_EXPECTS(spans > 0);
  CollectorState& s = state();
  MutexLock lock(s.mutex);
  s.thread_capacity = spans;
}

std::size_t TraceCollector::thread_capacity() const {
  CollectorState& s = state();
  MutexLock lock(s.mutex);
  return s.thread_capacity;
}

TraceCollector::ThreadBuffer& TraceCollector::buffer_for_this_thread() {
  if (!t_handle.buffer) {
    CollectorState& s = state();
    MutexLock lock(s.mutex);
    auto buffer =
        std::make_shared<ThreadBuffer>(s.thread_capacity, s.next_tid++);
    s.buffers.push_back(buffer);
    t_handle.buffer = std::move(buffer);
  }
  return *t_handle.buffer;
}

void TraceCollector::record(const SpanRecord& record) {
  if (!enabled()) return;
  buffer_for_this_thread().ring.push(record);
}

std::uint64_t TraceCollector::now_ns() const {
  return steady_now_ns() - state().epoch_ns;
}

void TraceCollector::name_this_thread(const std::string& name) {
  if (!enabled()) return;
  ThreadBuffer& buffer = buffer_for_this_thread();
  MutexLock lock(buffer.name_mutex);
  buffer.name = name;
}

TraceSnapshot TraceCollector::collect() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    CollectorState& s = state();
    MutexLock lock(s.mutex);
    buffers = s.buffers;
  }
  TraceSnapshot snap;
  snap.threads.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    ThreadTrace t;
    t.tid = buffer->tid;
    {
      MutexLock lock(buffer->name_mutex);
      t.name = buffer->name;
    }
    t.dropped_spans = buffer->ring.snapshot(t.spans);
    snap.threads.push_back(std::move(t));
  }
  return snap;
}

void TraceCollector::reset() {
  CollectorState& s = state();
  MutexLock lock(s.mutex);
  auto& buffers = s.buffers;
  for (const auto& buffer : buffers) buffer->ring.reset();
  // Retired buffers can never be written again — release them so a
  // long-lived process that traces in rounds stays bounded by its live
  // thread count, not its historical one.
  buffers.erase(std::remove_if(buffers.begin(), buffers.end(),
                               [](const auto& b) {
                                 return b->retired.load(
                                     std::memory_order_acquire);
                               }),
                buffers.end());
}

void set_thread_name(const std::string& name) {
  TraceCollector::instance().name_this_thread(name);
}

// ---------------------------------------------------------------------------
// Snapshot helpers
// ---------------------------------------------------------------------------

std::uint64_t TraceSnapshot::total_spans() const {
  std::uint64_t n = 0;
  for (const ThreadTrace& t : threads) n += t.spans.size();
  return n;
}

std::uint64_t TraceSnapshot::total_dropped() const {
  std::uint64_t n = 0;
  for (const ThreadTrace& t : threads) n += t.dropped_spans;
  return n;
}

const SpanRecord* TraceSnapshot::find(const char* name) const {
  const std::string_view want(name);
  for (const ThreadTrace& t : threads) {
    for (const SpanRecord& r : t.spans) {
      if (r.name != nullptr && std::string_view(r.name) == want) return &r;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

namespace {

void write_span_args(JsonWriter& w, const SpanRecord& r) {
  if (r.arg1_name == nullptr && r.arg2_name == nullptr &&
      r.sarg_name == nullptr && r.sarg2_name == nullptr) {
    return;
  }
  w.key("args").begin_object();
  if (r.arg1_name != nullptr) w.kv(r.arg1_name, r.arg1);
  if (r.arg2_name != nullptr) w.kv(r.arg2_name, r.arg2);
  if (r.sarg_name != nullptr && r.sarg != nullptr) w.kv(r.sarg_name, r.sarg);
  if (r.sarg2_name != nullptr && r.sarg2 != nullptr) {
    w.kv(r.sarg2_name, r.sarg2);
  }
  w.end_object();
}

void write_duration_event(JsonWriter& w, char phase, std::uint64_t tid,
                          double ts_us, const SpanRecord& r) {
  w.begin_object()
      .kv("ph", std::string_view(&phase, 1))
      .kv("pid", 1)
      .kv("tid", static_cast<std::int64_t>(tid))
      .kv("ts", ts_us)
      .kv("name", r.name != nullptr ? r.name : "span")
      .kv("cat", "us3d");
  if (phase == 'B') write_span_args(w, r);
  w.end_object();
}

}  // namespace

void TraceCollector::write_chrome_trace(std::ostream& os) const {
  const TraceSnapshot snap = collect();
  // Default stream precision (6 significant digits) would collapse
  // microsecond timestamps minutes into a run; 15 digits keeps ns apart.
  const std::streamsize saved_precision = os.precision(15);
  JsonWriter w(os);
  w.begin_object().key("traceEvents").begin_array();
  for (const ThreadTrace& t : snap.threads) {
    w.begin_object()
        .kv("ph", "M")
        .kv("pid", 1)
        .kv("tid", static_cast<std::int64_t>(t.tid))
        .kv("name", "thread_name")
        .key("args")
        .begin_object()
        .kv("name", t.name)
        .end_object()
        .end_object();
  }
  for (const ThreadTrace& t : snap.threads) {
    // RAII spans on one thread are properly nested or disjoint, so the
    // interval set replays as a balanced B/E sequence: visit spans outer-
    // first (t0 asc, t1 desc), closing every open span that ends at or
    // before the next span starts. Emitted ts is monotone per thread.
    std::vector<const SpanRecord*> order;
    order.reserve(t.spans.size());
    for (const SpanRecord& r : t.spans) order.push_back(&r);
    std::stable_sort(order.begin(), order.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                       if (a->t0_ns != b->t0_ns) return a->t0_ns < b->t0_ns;
                       return a->t1_ns > b->t1_ns;
                     });
    std::vector<const SpanRecord*> open;
    for (const SpanRecord* r : order) {
      while (!open.empty() && open.back()->t1_ns <= r->t0_ns) {
        write_duration_event(w, 'E', t.tid,
                             static_cast<double>(open.back()->t1_ns) / 1e3,
                             *open.back());
        open.pop_back();
      }
      write_duration_event(w, 'B', t.tid,
                           static_cast<double>(r->t0_ns) / 1e3, *r);
      open.push_back(r);
    }
    while (!open.empty()) {
      write_duration_event(w, 'E', t.tid,
                             static_cast<double>(open.back()->t1_ns) / 1e3,
                           *open.back());
      open.pop_back();
    }
  }
  w.end_array()
      .key("otherData")
      .begin_object()
      .kv("dropped_spans", static_cast<std::int64_t>(snap.total_dropped()))
      .kv("tracing_compiled", compiled_in())
      .end_object()
      .kv("displayTimeUnit", "ms")
      .end_object();
  os.precision(saved_precision);
}

// ---------------------------------------------------------------------------
// TraceSpan / trace_instant
// ---------------------------------------------------------------------------

TraceSpan::TraceSpan(const char* name) {
  TraceCollector& c = TraceCollector::instance();
  if (!c.enabled()) return;
  active_ = true;
  record_.name = name;
  record_.t0_ns = c.now_ns();
}

TraceSpan::TraceSpan(const char* name, const char* arg1_name,
                     std::int64_t arg1)
    : TraceSpan(name) {
  record_.arg1_name = arg1_name;
  record_.arg1 = arg1;
}

TraceSpan::TraceSpan(const char* name, const char* arg1_name,
                     std::int64_t arg1, const char* arg2_name,
                     std::int64_t arg2)
    : TraceSpan(name, arg1_name, arg1) {
  record_.arg2_name = arg2_name;
  record_.arg2 = arg2;
}

TraceSpan::TraceSpan(const char* name, const char* arg1_name,
                     std::int64_t arg1, const char* arg2_name,
                     std::int64_t arg2, const char* sarg_name,
                     const char* sarg)
    : TraceSpan(name, arg1_name, arg1, arg2_name, arg2) {
  record_.sarg_name = sarg_name;
  record_.sarg = sarg;
}

TraceSpan::TraceSpan(const char* name, const char* arg1_name,
                     std::int64_t arg1, const char* arg2_name,
                     std::int64_t arg2, const char* sarg_name,
                     const char* sarg, const char* sarg2_name,
                     const char* sarg2)
    : TraceSpan(name, arg1_name, arg1, arg2_name, arg2, sarg_name, sarg) {
  record_.sarg2_name = sarg2_name;
  record_.sarg2 = sarg2;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceCollector& c = TraceCollector::instance();
  record_.t1_ns = c.now_ns();
  if (record_.t1_ns < record_.t0_ns) record_.t1_ns = record_.t0_ns;
  c.record(record_);
}

void trace_instant(const char* name) {
  TraceCollector& c = TraceCollector::instance();
  if (!c.enabled()) return;
  SpanRecord r;
  r.name = name;
  r.t0_ns = r.t1_ns = c.now_ns();
  c.record(r);
}

void trace_instant(const char* name, const char* arg1_name,
                   std::int64_t arg1) {
  TraceCollector& c = TraceCollector::instance();
  if (!c.enabled()) return;
  SpanRecord r;
  r.name = name;
  r.t0_ns = r.t1_ns = c.now_ns();
  r.arg1_name = arg1_name;
  r.arg1 = arg1;
  c.record(r);
}

void trace_instant(const char* name, const char* arg1_name, std::int64_t arg1,
                   const char* arg2_name, std::int64_t arg2) {
  TraceCollector& c = TraceCollector::instance();
  if (!c.enabled()) return;
  SpanRecord r;
  r.name = name;
  r.t0_ns = r.t1_ns = c.now_ns();
  r.arg1_name = arg1_name;
  r.arg1 = arg1;
  r.arg2_name = arg2_name;
  r.arg2 = arg2;
  c.record(r);
}

}  // namespace us3d::obs
