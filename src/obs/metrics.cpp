#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.h"
#include "common/json_writer.h"

namespace us3d::obs {

// ---------------------------------------------------------------------------
// FixedHistogram
// ---------------------------------------------------------------------------

FixedHistogram::FixedHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  US3D_EXPECTS(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    US3D_EXPECTS(bounds_[i] > bounds_[i - 1]);
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void FixedHistogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // bounds_.size() = ovf
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // min/max via CAS: fetch_min/fetch_max for doubles don't exist. The
  // count_ == 0 window is handled by seeding both extremes from the first
  // observation that wins the count 0 -> 1 race.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    double seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }
}

double FixedHistogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double FixedHistogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double FixedHistogram::mean() const {
  const std::int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

std::uint64_t FixedHistogram::bucket_count(std::size_t i) const {
  US3D_EXPECTS(i <= bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

double FixedHistogram::quantile(double q) const {
  US3D_EXPECTS(q >= 0.0 && q <= 1.0);
  std::uint64_t total = 0;
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double lo = min();
  const double hi = max();
  // Rank in [0, total): the sample the quantile falls on.
  const double rank = q * static_cast<double>(total - 1);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (rank < next || i + 1 == counts.size()) {
      // Interpolate linearly across this bucket's value range, clamped
      // to the observed extremes (the overflow bucket has no upper edge
      // and the first bucket no lower edge).
      double lower = i == 0 ? lo : bounds_[i - 1];
      double upper = i < bounds_.size() ? bounds_[i] : hi;
      lower = std::max(lower, lo);
      upper = std::min(upper, hi);
      if (upper <= lower) return lower;
      const double within =
          counts[i] > 1
              ? (rank - cumulative) / static_cast<double>(counts[i] - 1)
              : 0.5;
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return hi;
}

std::vector<double> FixedHistogram::default_latency_bounds() {
  // Four buckets per decade, 100 us .. ~100 s: spans a shed-threshold
  // interactive frame and a pathologically stalled bulk session alike.
  std::vector<double> bounds;
  for (double decade = 1e-4; decade < 1e2 * 1.5; decade *= 10.0) {
    for (double step : {1.0, 1.8, 3.2, 5.6}) {
      bounds.push_back(decade * step);
    }
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: pipeline threads may update metrics during static
  // destruction of other translation units.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::shared_ptr<Counter> MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  Entry& e = entries_[name];
  if (e.gauge || e.histogram) {
    throw ContractViolation("metric '" + name + "' is not a counter");
  }
  if (!e.counter) e.counter = std::make_shared<Counter>();
  return e.counter;
}

std::shared_ptr<Gauge> MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  Entry& e = entries_[name];
  if (e.counter || e.histogram) {
    throw ContractViolation("metric '" + name + "' is not a gauge");
  }
  if (!e.gauge) e.gauge = std::make_shared<Gauge>();
  return e.gauge;
}

std::shared_ptr<FixedHistogram> MetricsRegistry::histogram(
    const std::string& name, std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  Entry& e = entries_[name];
  if (e.counter || e.gauge) {
    throw ContractViolation("metric '" + name + "' is not a histogram");
  }
  if (!e.histogram) {
    if (upper_bounds.empty()) {
      upper_bounds = FixedHistogram::default_latency_bounds();
    }
    e.histogram = std::make_shared<FixedHistogram>(std::move(upper_bounds));
  }
  return e.histogram;
}

std::shared_ptr<Counter> MetricsRegistry::find_counter(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.counter : nullptr;
}

std::shared_ptr<Gauge> MetricsRegistry::find_gauge(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.gauge : nullptr;
}

std::shared_ptr<FixedHistogram> MetricsRegistry::find_histogram(
    const std::string& name) const {
  MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second.histogram : nullptr;
}

std::size_t MetricsRegistry::remove(const std::string& name) {
  MutexLock lock(mutex_);
  return entries_.erase(name);
}

std::size_t MetricsRegistry::remove_prefix(const std::string& prefix) {
  MutexLock lock(mutex_);
  std::size_t removed = 0;
  for (auto it = entries_.lower_bound(prefix);
       it != entries_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       it = entries_.erase(it)) {
    ++removed;
  }
  return removed;
}

void MetricsRegistry::clear() {
  MutexLock lock(mutex_);
  entries_.clear();
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::string MetricsRegistry::snapshot_json() const {
  std::map<std::string, Entry> entries;
  {
    MutexLock lock(mutex_);
    entries = entries_;
  }
  std::ostringstream os;
  os.precision(15);
  JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, e] : entries) {
    if (e.counter) w.kv(name, e.counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, e] : entries) {
    if (e.gauge) w.kv(name, e.gauge->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, e] : entries) {
    if (!e.histogram) continue;
    const FixedHistogram& h = *e.histogram;
    w.key(name).begin_object();
    w.kv("count", h.count())
        .kv("sum", h.sum())
        .kv("min", h.min())
        .kv("max", h.max())
        .kv("mean", h.mean())
        .kv("p50", h.quantile(0.50))
        .kv("p90", h.quantile(0.90))
        .kv("p99", h.quantile(0.99));
    w.key("buckets").begin_array();
    const std::vector<double>& bounds = h.upper_bounds();
    for (std::size_t i = 0; i <= bounds.size(); ++i) {
      const std::uint64_t n = h.bucket_count(i);
      if (n == 0) continue;  // sparse: most of a wide grid is empty
      w.begin_object();
      if (i < bounds.size()) {
        w.kv("le", bounds[i]);
      } else {
        w.kv("le", "+inf");
      }
      w.kv("count", static_cast<std::int64_t>(n)).end_object();
    }
    w.end_array().end_object();
  }
  w.end_object();
  w.end_object();
  return os.str();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::map<std::string, Entry> entries;
  {
    MutexLock lock(mutex_);
    entries = entries_;
  }
  MetricsSnapshot snap;
  for (const auto& [name, e] : entries) {
    if (e.counter) snap.counters[name] = e.counter->value();
    if (e.gauge) snap.gauges[name] = e.gauge->value();
    if (e.histogram) {
      const FixedHistogram& h = *e.histogram;
      MetricsSnapshot::Histogram out;
      out.upper_bounds = h.upper_bounds();
      out.buckets.resize(out.upper_bounds.size() + 1);
      for (std::size_t i = 0; i < out.buckets.size(); ++i) {
        out.buckets[i] = h.bucket_count(i);
      }
      out.count = h.count();
      out.sum = h.sum();
      out.min = h.min();
      out.max = h.max();
      out.p50 = h.quantile(0.50);
      out.p90 = h.quantile(0.90);
      out.p99 = h.quantile(0.99);
      snap.histograms[name] = std::move(out);
    }
  }
  return snap;
}

}  // namespace us3d::obs
