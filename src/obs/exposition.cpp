#include "obs/exposition.h"

#include <sstream>

namespace us3d::obs {

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

/// `{us3d_name="<original>"}` — keeps the registry dot-path recoverable
/// after name sanitization collapses '.' and '_' together.
std::string name_label(const std::string& original) {
  return "{us3d_name=\"" + prometheus_label_escape(original) + "\"}";
}

void render_number(std::ostream& os, double v) {
  // The text format wants plain decimal; default precision loses
  // distinct microsecond-scale sums, so widen it like snapshot_json().
  const std::streamsize saved = os.precision(15);
  os << v;
  os.precision(saved);
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name) + "_total";
    os << "# TYPE " << prom << " counter\n";
    os << prom << name_label(name) << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    os << "# TYPE " << prom << " gauge\n";
    os << prom << name_label(name) << " " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    const std::string escaped = prometheus_label_escape(name);
    os << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
      os << prom << "_bucket{us3d_name=\"" << escaped << "\",le=\"";
      render_number(os, h.upper_bounds[i]);
      os << "\"} " << cumulative << "\n";
    }
    if (!h.buckets.empty()) cumulative += h.buckets.back();
    os << prom << "_bucket{us3d_name=\"" << escaped << "\",le=\"+Inf\"} "
       << cumulative << "\n";
    os << prom << "_sum" << name_label(name) << " ";
    render_number(os, h.sum);
    os << "\n";
    os << prom << "_count" << name_label(name) << " " << h.count << "\n";
  }
  return os.str();
}

std::string render_prometheus(const MetricsRegistry& registry) {
  return render_prometheus(registry.snapshot());
}

}  // namespace us3d::obs
