#include "hw/tablefree_unit.h"

#include "common/contracts.h"

namespace us3d::hw {

TableFreeTiming analyze_tablefree_timing(
    const imaging::SystemConfig& config,
    const delay::TableFreeEngine::TrackerStats& stats,
    const TableFreeUnitModel& model) {
  US3D_EXPECTS(model.clock_hz > 0.0);
  US3D_EXPECTS(model.pipeline_depth >= 0);

  TableFreeTiming t;
  t.stall_cycles_per_point = stats.mean_steps_per_evaluation();
  const double points = static_cast<double>(config.volume.total_points());
  const double refills = static_cast<double>(config.plan.shots_per_volume) *
                         model.pipeline_depth;
  US3D_EXPECTS(model.datapath_efficiency > 0.0 &&
               model.datapath_efficiency <= 1.0);
  t.cycles_per_frame =
      points * (1.0 + t.stall_cycles_per_point) / model.datapath_efficiency +
      refills;
  t.frame_rate = model.clock_hz / t.cycles_per_frame;
  t.delays_per_second_per_unit = points * t.frame_rate;
  t.fleet_delays_per_second =
      t.delays_per_second_per_unit *
      static_cast<double>(config.probe.element_count());
  return t;
}

}  // namespace us3d::hw
