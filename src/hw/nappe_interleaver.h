// Staggered nappe-to-bank mapping (Sec. V-B): "To ensure that all BRAMs
// can operate in parallel, the delay values loaded in each should be
// staggered rather than consecutive, so that a beamformer trying to fetch
// delay samples for consecutive nappes can retrieve them from the 128
// BRAMs in parallel."
//
// The interleaver assigns table entry (quadrant element q, depth d) to
// bank (d mod B) at line (q * ceil(D/B) + d div B): any window of B
// consecutive nappes touches every bank exactly once per element, so the
// fabric's 128 read ports are all busy.
#ifndef US3D_HW_NAPPE_INTERLEAVER_H
#define US3D_HW_NAPPE_INTERLEAVER_H

#include <cstdint>

namespace us3d::hw {

class NappeInterleaver {
 public:
  /// `banks` BRAM banks serving a table of `quad_elements` x `depths`
  /// entries (the folded reference table).
  NappeInterleaver(int banks, std::int64_t quad_elements, int depths);

  int banks() const { return banks_; }
  int depths() const { return depths_; }
  std::int64_t quad_elements() const { return quad_elements_; }

  struct Location {
    int bank = 0;
    std::int64_t line = 0;
  };

  /// Bank/line of entry (element, depth).
  Location locate(std::int64_t quad_element, int depth) const;

  /// Lines each bank must provide (capacity check against e.g. 1k-line
  /// circular buffers once chunking is applied on top).
  std::int64_t lines_per_bank() const;

  /// Number of distinct banks touched by `window` consecutive depths of
  /// one element: full parallelism means min(window, banks).
  int banks_touched_by_depth_window(int first_depth, int window) const;

 private:
  int banks_;
  std::int64_t quad_elements_;
  int depths_;
  std::int64_t depth_rows_per_bank_;
};

}  // namespace us3d::hw

#endif  // US3D_HW_NAPPE_INTERLEAVER_H
