// Functional (bit-accurate) model of one Fig. 4 delay-computation block:
// a BRAM bank feeding a two-stage adder tree. Per cycle the block reads
// one reference-delay word and applies all permutations of the 8 loaded
// x-corrections and 16 loaded y-corrections:
//
//   stage 1:  s_i  = ref + cx_i           (8 adders)
//   stage 2:  d_ij = round(s_i + cy_j)    (16 x 8 adders, with rounding)
//
// producing 128 steered echo-buffer indices. The correction registers are
// held constant through an insonification ("entirely removing the
// coefficients from the critical timing path").
//
// The model is verified bit-exact against TableSteerEngine, establishing
// that the fabric of 128 such blocks computes precisely the delays the
// algorithmic engine defines.
#ifndef US3D_HW_STEER_BLOCK_H
#define US3D_HW_STEER_BLOCK_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/fixed_point.h"
#include "delay/tablesteer.h"

namespace us3d::hw {

class SteerBlock {
 public:
  /// Register-file geometry of the paper's block: 8 x-corrections by
  /// 16 y-corrections.
  SteerBlock(const delay::TableSteerConfig& formats, int x_slots = 8,
             int y_slots = 16);

  int x_slots() const { return static_cast<int>(x_regs_.size()); }
  int y_slots() const { return static_cast<int>(y_regs_.size()); }
  int outputs_per_cycle() const { return x_slots() * y_slots(); }
  int adder_count() const { return x_slots() + x_slots() * y_slots(); }

  /// Loads the correction register files (once per insonification).
  void load_corrections(std::span<const fx::Value> x_corrections,
                        std::span<const fx::Value> y_corrections);

  /// One clock cycle: consume one reference word, emit x_slots*y_slots
  /// steered indices, ordered [y][x] (y outer), clamped at zero like the
  /// engine.
  void cycle(const fx::Value& reference,
             std::span<std::int32_t> out) const;

 private:
  delay::TableSteerConfig formats_;
  std::vector<fx::Value> x_regs_;
  std::vector<fx::Value> y_regs_;
  bool loaded_ = false;
};

}  // namespace us3d::hw

#endif  // US3D_HW_STEER_BLOCK_H
