// The TABLESTEER delay fabric (Fig. 4): 128 memory-centric blocks, each
// built around one BRAM bank. Per cycle a block reads one reference-delay
// word and applies all permutations of 8 x-corrections and 16 y-corrections
// (8 + 16*8 = 136 adders), producing 128 steered delay samples. Blocks hold
// staggered depth slices so all 128 operate in parallel.
//
// This module provides the closed-form throughput/bandwidth analysis and a
// cycle-level stream simulation that backs the Sec. V-B claims (3.3 Tdelays/s
// at 200 MHz, ~20 fps, 5.3 GB/s DRAM, 1k-cycle refill margin).
#ifndef US3D_HW_DELAY_FABRIC_H
#define US3D_HW_DELAY_FABRIC_H

#include <cstdint>

#include "common/fixed_point.h"
#include "hw/stream_buffer.h"
#include "imaging/system_config.h"

namespace us3d::hw {

struct FabricConfig {
  int blocks = 128;           ///< BRAM-centric blocks instantiated
  int x_corrections = 8;      ///< x-plane corrections applied per read
  int y_corrections = 16;     ///< y-plane corrections applied per read
  double clock_hz = 200.0e6;
  fx::Format entry_format = fx::kRefDelay18;
  std::int64_t bram_lines_per_bank = 1024;

  int adders_per_block() const {
    // First stage: x adders; second stage: one y adder per (x, y) pair.
    return x_corrections + x_corrections * y_corrections;
  }
  int delays_per_cycle_per_block() const {
    return x_corrections * y_corrections;
  }
};

struct FabricAnalysis {
  int total_adders = 0;
  double peak_delays_per_second = 0.0;      ///< blocks * 128 * clock
  double required_delays_per_second = 0.0;  ///< from the system plan
  double utilization = 0.0;                 ///< required / peak
  double frame_rate_at_peak = 0.0;          ///< peak / delays-per-frame
  bool meets_realtime = false;              ///< frame_rate_at_peak >= plan rate

  /// Memory side.
  double bram_reads_per_second = 0.0;   ///< across all blocks
  double reuse_per_fetched_entry = 0.0; ///< BRAM reads per DRAM fetch
  double dram_bandwidth_bytes_per_second = 0.0;
  double table_fetches_per_second = 0.0;
};

FabricAnalysis analyze_fabric(const imaging::SystemConfig& config,
                              const FabricConfig& fabric);

/// Cycle-level check of the circular-buffer streaming: continuous pipelined
/// operation (receive of shot k+1 overlaps beamforming of shot k), producer
/// at `bandwidth_headroom` x the balanced DRAM rate, with optional producer
/// blackouts. Simulates `insonifications` shots.
StreamBufferReport simulate_fabric_streaming(
    const imaging::SystemConfig& config, const FabricConfig& fabric,
    int insonifications, double bandwidth_headroom = 1.0,
    std::int64_t blackout_period_cycles = 0,
    std::int64_t blackout_duration_cycles = 0);

}  // namespace us3d::hw

#endif  // US3D_HW_DELAY_FABRIC_H
