#include "hw/delay_fabric.h"

#include "common/contracts.h"
#include "delay/table_sizing.h"

namespace us3d::hw {

FabricAnalysis analyze_fabric(const imaging::SystemConfig& config,
                              const FabricConfig& fabric) {
  US3D_EXPECTS(fabric.blocks > 0);
  US3D_EXPECTS(fabric.x_corrections > 0 && fabric.y_corrections > 0);
  US3D_EXPECTS(fabric.clock_hz > 0.0);

  FabricAnalysis a;
  a.total_adders = fabric.adders_per_block() * fabric.blocks;
  a.peak_delays_per_second = static_cast<double>(fabric.blocks) *
                             fabric.delays_per_cycle_per_block() *
                             fabric.clock_hz;
  a.required_delays_per_second = config.delays_per_second();
  a.utilization = a.required_delays_per_second / a.peak_delays_per_second;
  a.frame_rate_at_peak =
      a.peak_delays_per_second /
      static_cast<double>(config.delays_per_frame());
  a.meets_realtime = a.frame_rate_at_peak >= config.plan.volume_rate_hz;

  // Memory side: every steered delay comes from one BRAM read amortized
  // over delays_per_cycle_per_block outputs.
  a.bram_reads_per_second = a.required_delays_per_second /
                            fabric.delays_per_cycle_per_block();
  const auto sizing =
      delay::reference_table_sizing(config, fabric.entry_format);
  a.table_fetches_per_second = config.plan.shots_per_second();
  const double fetch_words_per_second =
      static_cast<double>(sizing.folded_entries) * a.table_fetches_per_second;
  a.reuse_per_fetched_entry =
      fetch_words_per_second > 0.0
          ? a.bram_reads_per_second / fetch_words_per_second
          : 0.0;
  a.dram_bandwidth_bytes_per_second =
      fetch_words_per_second * fabric.entry_format.total_bits() / 8.0;
  return a;
}

StreamBufferReport simulate_fabric_streaming(
    const imaging::SystemConfig& config, const FabricConfig& fabric,
    int insonifications, double bandwidth_headroom,
    std::int64_t blackout_period_cycles,
    std::int64_t blackout_duration_cycles) {
  US3D_EXPECTS(insonifications > 0);
  US3D_EXPECTS(bandwidth_headroom > 0.0);

  const FabricAnalysis a = analyze_fabric(config, fabric);
  const auto sizing =
      delay::reference_table_sizing(config, fabric.entry_format);

  StreamBufferConfig sb;
  sb.capacity_words =
      static_cast<std::int64_t>(fabric.blocks) * fabric.bram_lines_per_bank;
  sb.clock_hz = fabric.clock_hz;
  sb.dram_bandwidth_bytes_per_s =
      a.dram_bandwidth_bytes_per_second * bandwidth_headroom;
  sb.word_bits = fabric.entry_format.total_bits();
  // Continuous operation: new table entries are consumed at the balanced
  // rate (full table once per insonification, spread over the period).
  const double cycles_per_insonification =
      fabric.clock_hz / config.plan.shots_per_second();
  sb.drain_words_per_cycle = static_cast<double>(sizing.folded_entries) /
                             cycles_per_insonification;
  sb.initial_fill_words = sb.capacity_words;
  sb.blackout_period_cycles = blackout_period_cycles;
  sb.blackout_duration_cycles = blackout_duration_cycles;

  const std::int64_t total_words =
      sizing.folded_entries * static_cast<std::int64_t>(insonifications);
  return simulate_stream(sb, total_words);
}

}  // namespace us3d::hw
