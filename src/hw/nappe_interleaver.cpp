#include "hw/nappe_interleaver.h"

#include <algorithm>

#include "common/contracts.h"

namespace us3d::hw {

NappeInterleaver::NappeInterleaver(int banks, std::int64_t quad_elements,
                                   int depths)
    : banks_(banks), quad_elements_(quad_elements), depths_(depths) {
  US3D_EXPECTS(banks > 0);
  US3D_EXPECTS(quad_elements > 0);
  US3D_EXPECTS(depths > 0);
  depth_rows_per_bank_ = (static_cast<std::int64_t>(depths) + banks - 1) /
                         banks;
}

NappeInterleaver::Location NappeInterleaver::locate(
    std::int64_t quad_element, int depth) const {
  US3D_EXPECTS(quad_element >= 0 && quad_element < quad_elements_);
  US3D_EXPECTS(depth >= 0 && depth < depths_);
  Location loc;
  loc.bank = static_cast<int>(depth % banks_);
  loc.line = quad_element * depth_rows_per_bank_ + depth / banks_;
  return loc;
}

std::int64_t NappeInterleaver::lines_per_bank() const {
  return quad_elements_ * depth_rows_per_bank_;
}

int NappeInterleaver::banks_touched_by_depth_window(int first_depth,
                                                    int window) const {
  US3D_EXPECTS(first_depth >= 0 && first_depth < depths_);
  US3D_EXPECTS(window > 0);
  const int last = std::min(first_depth + window, depths_);
  return std::min(last - first_depth, banks_);
}

}  // namespace us3d::hw
