#include "hw/steer_block.h"

#include "common/contracts.h"

namespace us3d::hw {

SteerBlock::SteerBlock(const delay::TableSteerConfig& formats, int x_slots,
                       int y_slots)
    : formats_(formats) {
  US3D_EXPECTS(x_slots > 0 && y_slots > 0);
  const fx::Value zero = fx::Value::from_raw(0, formats.coeff_format);
  x_regs_.assign(static_cast<std::size_t>(x_slots), zero);
  y_regs_.assign(static_cast<std::size_t>(y_slots), zero);
}

void SteerBlock::load_corrections(std::span<const fx::Value> x_corrections,
                                  std::span<const fx::Value> y_corrections) {
  US3D_EXPECTS(x_corrections.size() == x_regs_.size());
  US3D_EXPECTS(y_corrections.size() == y_regs_.size());
  for (std::size_t i = 0; i < x_regs_.size(); ++i) {
    US3D_EXPECTS(x_corrections[i].format() == formats_.coeff_format);
    x_regs_[i] = x_corrections[i];
  }
  for (std::size_t j = 0; j < y_regs_.size(); ++j) {
    US3D_EXPECTS(y_corrections[j].format() == formats_.coeff_format);
    y_regs_[j] = y_corrections[j];
  }
  loaded_ = true;
}

void SteerBlock::cycle(const fx::Value& reference,
                       std::span<std::int32_t> out) const {
  US3D_EXPECTS(loaded_);
  US3D_EXPECTS(reference.format() == formats_.entry_format);
  US3D_EXPECTS(out.size() ==
               static_cast<std::size_t>(outputs_per_cycle()));
  // Stage 1: the 8 x-adders.
  std::vector<fx::Value> stage1;
  stage1.reserve(x_regs_.size());
  for (const fx::Value& cx : x_regs_) {
    stage1.push_back(fx::add(reference, cx, formats_.sum_format));
  }
  // Stage 2: 16 x 8 adders with rounding to the echo-buffer index.
  std::size_t o = 0;
  for (const fx::Value& cy : y_regs_) {
    for (const fx::Value& s : stage1) {
      const std::int64_t idx =
          fx::add(s, cy, formats_.sum_format).round_to_int(
              fx::Rounding::kHalfUp);
      out[o++] = static_cast<std::int32_t>(idx < 0 ? 0 : idx);
    }
  }
}

}  // namespace us3d::hw
