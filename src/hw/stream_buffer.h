// DRAM-to-BRAM streaming model (Sec. V-B): the on-FPGA delay-table slice is
// a circular buffer refilled from external DRAM while the beamformer drains
// it nappe-by-nappe. The model steps cycle-by-cycle with a bandwidth-limited
// producer and a demand-driven consumer, and reports whether the consumer
// ever underruns and how much latency margin remains — the paper claims "an
// ample margin of 1k cycles of latency to fetch new data".
#ifndef US3D_HW_STREAM_BUFFER_H
#define US3D_HW_STREAM_BUFFER_H

#include <cstdint>

namespace us3d::hw {

struct StreamBufferConfig {
  std::int64_t capacity_words = 0;   ///< circular-buffer size (table entries)
  double clock_hz = 0.0;             ///< fabric clock
  double dram_bandwidth_bytes_per_s = 0.0;
  int word_bits = 0;                 ///< table-entry width
  /// Consumer demand: words drained per cycle while the beamformer is
  /// actively sweeping (averaged over a nappe).
  double drain_words_per_cycle = 0.0;
  /// Initial fill level before draining starts (words); the paper preloads
  /// the buffer during the transmit/receive dead time.
  std::int64_t initial_fill_words = 0;
  /// Optional producer blackout, modelling DRAM refresh / arbitration
  /// stalls: every `blackout_period_cycles`, the producer is silent for
  /// `blackout_duration_cycles`. 0 disables.
  std::int64_t blackout_period_cycles = 0;
  std::int64_t blackout_duration_cycles = 0;
};

struct StreamBufferReport {
  bool underrun = false;              ///< consumer ever found buffer empty
  std::int64_t underrun_cycles = 0;   ///< cycles the consumer had to stall
  std::int64_t min_fill_words = 0;    ///< worst occupancy during the run
  double min_margin_cycles = 0.0;     ///< min_fill / drain rate
  double fill_words_per_cycle = 0.0;  ///< producer rate actually used
  std::int64_t cycles_simulated = 0;
};

/// Simulates draining `total_words` through the buffer and reports margins.
StreamBufferReport simulate_stream(const StreamBufferConfig& config,
                                   std::int64_t total_words);

}  // namespace us3d::hw

#endif  // US3D_HW_STREAM_BUFFER_H
