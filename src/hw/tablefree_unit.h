// Timing model of the TABLEFREE per-element unit (Sec. IV-B): a pipelined
// multiplier+adder datapath that emits one receive delay per cycle as long
// as the PWL segment tracker does not have to move more than one segment.
// Extra segment steps stall the unit one cycle each — the cost the paper
// alludes to when noting that a scanline-oriented beamformer pairs poorly
// with incremental tracking (depth resets cross many segments at once).
#ifndef US3D_HW_TABLEFREE_UNIT_H
#define US3D_HW_TABLEFREE_UNIT_H

#include <cstdint>

#include "delay/tablefree.h"
#include "imaging/system_config.h"

namespace us3d::hw {

struct TableFreeUnitModel {
  double clock_hz = 167.0e6;  ///< paper's post-place FPGA clock
  int pipeline_depth = 4;     ///< refill cost at each insonification start
  /// Fraction of cycles that issue a new focal point. Calibrated to the
  /// empirical "about 1 fps per 20 MHz of operating frequency" rule the
  /// paper carries over from [7] (16.4e6 points / 20e6 cycles ~= 0.8);
  /// covers control bubbles and nappe-boundary turnaround the per-step
  /// stall model does not see.
  double datapath_efficiency = 0.8;
};

struct TableFreeTiming {
  double stall_cycles_per_point = 0.0;  ///< from tracker statistics
  double cycles_per_frame = 0.0;        ///< one unit sweeps all focal points
  double frame_rate = 0.0;
  double delays_per_second_per_unit = 0.0;
  /// Aggregate generation rate for one unit per element.
  double fleet_delays_per_second = 0.0;
};

/// Computes frame timing for a unit fleet (one unit per probe element),
/// given measured tracker behaviour for the chosen scan order.
/// `stats` should come from TableFreeEngine::tracker_stats() after a sweep
/// in the intended order; extra steps beyond the first are free only when
/// they are <= 1 per evaluation (the Fig. 2a comparator pair), so every
/// step is charged one stall cycle.
TableFreeTiming analyze_tablefree_timing(
    const imaging::SystemConfig& config,
    const delay::TableFreeEngine::TrackerStats& stats,
    const TableFreeUnitModel& model);

}  // namespace us3d::hw

#endif  // US3D_HW_TABLEFREE_UNIT_H
