#include "hw/stream_buffer.h"

#include <algorithm>

#include "common/contracts.h"

namespace us3d::hw {

StreamBufferReport simulate_stream(const StreamBufferConfig& config,
                                   std::int64_t total_words) {
  US3D_EXPECTS(config.capacity_words > 0);
  US3D_EXPECTS(config.clock_hz > 0.0);
  US3D_EXPECTS(config.dram_bandwidth_bytes_per_s > 0.0);
  US3D_EXPECTS(config.word_bits > 0);
  US3D_EXPECTS(config.drain_words_per_cycle > 0.0);
  US3D_EXPECTS(config.initial_fill_words >= 0 &&
               config.initial_fill_words <= config.capacity_words);
  US3D_EXPECTS(total_words > 0);

  const double word_bytes = config.word_bits / 8.0;
  const double fill_rate =
      config.dram_bandwidth_bytes_per_s / word_bytes / config.clock_hz;

  StreamBufferReport report;
  report.fill_words_per_cycle = fill_rate;

  // Fractional accumulators keep the per-cycle arithmetic exact without
  // simulating sub-word transfers.
  double fill_credit = 0.0;
  double drain_credit = 0.0;
  std::int64_t produced = config.initial_fill_words;
  std::int64_t consumed = 0;
  std::int64_t fill = config.initial_fill_words;
  report.min_fill_words = fill;

  std::int64_t cycles = 0;
  // Hard stop far beyond any sane run, so a mis-specified producer rate
  // fails loudly instead of looping forever.
  const std::int64_t max_cycles =
      16 * (total_words / std::max<std::int64_t>(1, static_cast<std::int64_t>(
                              config.drain_words_per_cycle)) +
            config.capacity_words + 1024);

  while (consumed < total_words) {
    US3D_ENSURES(cycles < max_cycles);
    ++cycles;
    // Producer: refill from DRAM, limited by bandwidth and free space.
    const bool blacked_out =
        config.blackout_period_cycles > 0 &&
        (cycles % config.blackout_period_cycles) <
            config.blackout_duration_cycles;
    if (produced < total_words && !blacked_out) {
      fill_credit += fill_rate;
      std::int64_t in = static_cast<std::int64_t>(fill_credit);
      in = std::min({in, config.capacity_words - fill, total_words - produced});
      fill_credit -= static_cast<double>(in);
      produced += in;
      fill += in;
    }
    // Consumer: drain at the beamformer's demand.
    drain_credit += config.drain_words_per_cycle;
    std::int64_t want = static_cast<std::int64_t>(drain_credit);
    want = std::min(want, total_words - consumed);
    const std::int64_t got = std::min(want, fill);
    if (got < want) {
      report.underrun = true;
      ++report.underrun_cycles;
    }
    drain_credit -= static_cast<double>(got);
    consumed += got;
    fill -= got;
    // The final drain-out (nothing left to prefetch) legitimately empties
    // the buffer; only occupancy while the stream is live measures margin.
    if (produced < total_words) {
      report.min_fill_words = std::min(report.min_fill_words, fill);
    }
  }
  report.cycles_simulated = cycles;
  report.min_margin_cycles =
      static_cast<double>(report.min_fill_words) / config.drain_words_per_cycle;
  return report;
}

}  // namespace us3d::hw
