// Imaging-volume geometry: the theta x phi x depth focal-point grid
// (Table I: 73 deg x 73 deg x 500 lambda, 128 x 128 x 1000 focal points).
#ifndef US3D_IMAGING_VOLUME_H
#define US3D_IMAGING_VOLUME_H

#include <cstdint>

#include "imaging/focal_point.h"

namespace us3d::imaging {

/// Static description of the scanned volume.
struct VolumeSpec {
  int n_theta = 0;           ///< lines of sight along azimuth
  int n_phi = 0;             ///< lines of sight along elevation
  int n_depth = 0;           ///< focal points per line of sight
  double theta_span_rad = 0.0;  ///< full azimuth field of view
  double phi_span_rad = 0.0;    ///< full elevation field of view
  double min_depth_m = 0.0;     ///< radius of the first focal point
  double max_depth_m = 0.0;     ///< radius of the last focal point (dp)

  std::int64_t total_points() const {
    return static_cast<std::int64_t>(n_theta) * n_phi * n_depth;
  }
  double theta_max_rad() const { return theta_span_rad / 2.0; }
  double phi_max_rad() const { return phi_span_rad / 2.0; }
};

/// Maps grid indices to angles, radii and Cartesian focal points.
class VolumeGrid {
 public:
  explicit VolumeGrid(const VolumeSpec& spec);

  const VolumeSpec& spec() const { return spec_; }

  double theta(int i_theta) const;  ///< in [-theta_max, +theta_max]
  double phi(int i_phi) const;      ///< in [-phi_max, +phi_max]
  double radius(int i_depth) const; ///< uniform in [min_depth, max_depth]

  /// Cartesian position per Eq. (5).
  static Vec3 position(double theta, double phi, double radius);

  FocalPoint focal_point(int i_theta, int i_phi, int i_depth) const;

  std::int64_t total_points() const { return spec_.total_points(); }

 private:
  VolumeSpec spec_;
  double theta_step_;
  double phi_step_;
  double depth_step_;
};

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_VOLUME_H
