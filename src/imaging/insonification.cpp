#include "imaging/insonification.h"

#include "common/contracts.h"

namespace us3d::imaging {

AcquisitionPlan make_plan(const VolumeSpec& volume, int shots_per_volume,
                          double volume_rate_hz) {
  US3D_EXPECTS(shots_per_volume > 0);
  US3D_EXPECTS(volume_rate_hz > 0.0);
  const std::int64_t lines =
      static_cast<std::int64_t>(volume.n_theta) * volume.n_phi;
  US3D_EXPECTS(lines % shots_per_volume == 0);
  AcquisitionPlan plan;
  plan.shots_per_volume = shots_per_volume;
  plan.scanlines_per_shot = static_cast<int>(lines / shots_per_volume);
  plan.volume_rate_hz = volume_rate_hz;
  return plan;
}

double round_trip_seconds(const VolumeSpec& volume, double speed_of_sound) {
  US3D_EXPECTS(speed_of_sound > 0.0);
  return 2.0 * volume.max_depth_m / speed_of_sound;
}

double max_acoustic_volume_rate(const VolumeSpec& volume,
                                double speed_of_sound, int shots_per_volume) {
  US3D_EXPECTS(shots_per_volume > 0);
  return 1.0 /
         (static_cast<double>(shots_per_volume) *
          round_trip_seconds(volume, speed_of_sound));
}

bool is_acoustically_feasible(const AcquisitionPlan& plan,
                              const VolumeSpec& volume,
                              double speed_of_sound) {
  return plan.volume_rate_hz <=
         max_acoustic_volume_rate(volume, speed_of_sound,
                                  plan.shots_per_volume);
}

}  // namespace us3d::imaging
