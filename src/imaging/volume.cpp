#include "imaging/volume.h"

#include <cmath>

#include "common/contracts.h"

namespace us3d::imaging {

VolumeGrid::VolumeGrid(const VolumeSpec& spec) : spec_(spec) {
  US3D_EXPECTS(spec.n_theta > 0 && spec.n_phi > 0 && spec.n_depth > 0);
  US3D_EXPECTS(spec.theta_span_rad >= 0.0 && spec.phi_span_rad >= 0.0);
  US3D_EXPECTS(spec.min_depth_m > 0.0);
  US3D_EXPECTS(spec.max_depth_m >= spec.min_depth_m);
  theta_step_ = spec.n_theta > 1
                    ? spec.theta_span_rad / static_cast<double>(spec.n_theta - 1)
                    : 0.0;
  phi_step_ = spec.n_phi > 1
                  ? spec.phi_span_rad / static_cast<double>(spec.n_phi - 1)
                  : 0.0;
  depth_step_ = spec.n_depth > 1
                    ? (spec.max_depth_m - spec.min_depth_m) /
                          static_cast<double>(spec.n_depth - 1)
                    : 0.0;
}

double VolumeGrid::theta(int i) const {
  US3D_EXPECTS(i >= 0 && i < spec_.n_theta);
  return -spec_.theta_max_rad() + static_cast<double>(i) * theta_step_;
}

double VolumeGrid::phi(int i) const {
  US3D_EXPECTS(i >= 0 && i < spec_.n_phi);
  return -spec_.phi_max_rad() + static_cast<double>(i) * phi_step_;
}

double VolumeGrid::radius(int i) const {
  US3D_EXPECTS(i >= 0 && i < spec_.n_depth);
  return spec_.min_depth_m + static_cast<double>(i) * depth_step_;
}

Vec3 VolumeGrid::position(double theta, double phi, double radius) {
  return {radius * std::cos(phi) * std::sin(theta),
          radius * std::sin(phi),
          radius * std::cos(phi) * std::cos(theta)};
}

FocalPoint VolumeGrid::focal_point(int i_theta, int i_phi, int i_depth) const {
  FocalPoint fp;
  fp.i_theta = i_theta;
  fp.i_phi = i_phi;
  fp.i_depth = i_depth;
  fp.theta = theta(i_theta);
  fp.phi = phi(i_phi);
  fp.radius = radius(i_depth);
  fp.position = position(fp.theta, fp.phi, fp.radius);
  return fp;
}

}  // namespace us3d::imaging
