#include "imaging/system_config.h"

#include <algorithm>
#include <cmath>

#include "common/angles.h"
#include "common/contracts.h"
#include "probe/presets.h"

namespace us3d::imaging {

std::int64_t SystemConfig::echo_buffer_samples() const {
  // Two-way flight to the deepest on-axis point, plus a guard band: steered
  // paths to far corner elements exceed 2*dp by up to the aperture radius
  // (about 130 samples for the paper geometry at 36.5 deg), and the pulse
  // tail rings past the last arrival. 192 samples (6 us) covers both while
  // keeping the paper system at a 13-bit index ("slightly more than 8000
  // samples ... requires 13-bit precision", Sec. V-B).
  constexpr std::int64_t kGuardSamples = 192;
  const double two_way = 2.0 * volume.max_depth_m / speed_of_sound;
  return static_cast<std::int64_t>(
             std::ceil(two_way * sampling_frequency_hz)) +
         kGuardSamples;
}

int SystemConfig::delay_index_bits() const {
  const std::int64_t n = echo_buffer_samples();
  int bits = 0;
  while ((std::int64_t{1} << bits) < n) ++bits;
  return bits;
}

std::int64_t SystemConfig::delays_per_frame() const {
  return volume.total_points() * probe.element_count();
}

double SystemConfig::delays_per_second() const {
  return static_cast<double>(delays_per_frame()) * plan.volume_rate_hz;
}

SystemConfig paper_system() {
  SystemConfig cfg;
  cfg.probe = probe::paper_probe();
  cfg.speed_of_sound = probe::kSpeedOfSoundTissue;
  cfg.sampling_frequency_hz = 32.0e6;

  const double lambda = cfg.wavelength_m();
  cfg.volume = VolumeSpec{
      .n_theta = 128,
      .n_phi = 128,
      .n_depth = 1000,
      .theta_span_rad = deg_to_rad(73.0),
      .phi_span_rad = deg_to_rad(73.0),
      // 1000 focal points spaced lambda/2 apart, out to dp = 500 lambda.
      .min_depth_m = lambda / 2.0,
      .max_depth_m = 500.0 * lambda,
  };
  cfg.plan = make_plan(cfg.volume, /*shots_per_volume=*/64,
                       /*volume_rate_hz=*/15.0);
  return cfg;
}

SystemConfig scaled_system(int probe_elements_per_side, int n_lines,
                           int n_depth) {
  US3D_EXPECTS(probe_elements_per_side > 0);
  US3D_EXPECTS(n_lines > 0 && n_depth > 0);
  SystemConfig cfg = paper_system();
  cfg.probe = probe::small_probe(probe_elements_per_side);
  cfg.volume.n_theta = n_lines;
  cfg.volume.n_phi = n_lines;
  cfg.volume.n_depth = n_depth;
  // Keep the depth *range* proportional to the line count so the scaled
  // system has the same focal-point density as the paper system.
  const double lambda = cfg.wavelength_m();
  cfg.volume.min_depth_m = lambda / 2.0;
  cfg.volume.max_depth_m = lambda / 2.0 * static_cast<double>(n_depth);
  // Largest shot count <= 64 that divides the line count evenly (the paper
  // plan uses 64; odd grids need a compatible divisor).
  const int lines = n_lines * n_lines;
  int shots = 1;
  for (int s = std::min(64, lines); s >= 1; --s) {
    if (lines % s == 0) {
      shots = s;
      break;
    }
  }
  cfg.plan = make_plan(cfg.volume, shots, 15.0);
  return cfg;
}

}  // namespace us3d::imaging
