// Full system configuration (Table I of the paper) and derived quantities.
// Every experiment takes a SystemConfig so that scaled-down variants (for
// tests) and the full paper system share one code path.
#ifndef US3D_IMAGING_SYSTEM_CONFIG_H
#define US3D_IMAGING_SYSTEM_CONFIG_H

#include <cstdint>

#include "imaging/insonification.h"
#include "imaging/volume.h"
#include "probe/transducer.h"

namespace us3d::imaging {

struct SystemConfig {
  probe::TransducerSpec probe{};
  VolumeSpec volume{};
  double speed_of_sound = 0.0;        ///< c [m/s]
  double sampling_frequency_hz = 0.0; ///< fs (echo sampling)
  AcquisitionPlan plan{};

  double wavelength_m() const {
    return probe.wavelength_m(speed_of_sound);
  }
  /// Duration of one echo sample: the delay quantization grain (~30 ns).
  double sample_period_s() const { return 1.0 / sampling_frequency_hz; }
  /// Convert a propagation delay in seconds to units of echo samples.
  double seconds_to_samples(double seconds) const {
    return seconds * sampling_frequency_hz;
  }
  double samples_to_seconds(double samples) const {
    return samples / sampling_frequency_hz;
  }
  /// Echo-buffer length: two-way flight to the deepest point, in samples
  /// ("slightly more than 8000 samples ... requires 13-bit precision").
  std::int64_t echo_buffer_samples() const;
  /// Bits needed to index the echo buffer (13 for the paper system).
  int delay_index_bits() const;

  /// Total delay coefficients per frame: points x elements (~164e9).
  std::int64_t delays_per_frame() const;
  /// Delay coefficients per second at the plan's volume rate (~2.5e12).
  double delays_per_second() const;
};

/// The complete Table I system: 100x100 probe, 73 deg x 73 deg x 500 lambda
/// volume, 128x128x1000 focal points, fs = 32 MHz, 15 Hz, 64 shots/volume.
SystemConfig paper_system();

/// A reduced system (same physics, smaller probe/grid) whose exhaustive
/// sweeps run in milliseconds; used by unit tests and examples.
/// `scale` ~ elements per side; the grid shrinks proportionally.
SystemConfig scaled_system(int probe_elements_per_side, int n_lines,
                           int n_depth);

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_SYSTEM_CONFIG_H
