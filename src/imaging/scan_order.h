// Scan orders from Algorithm 1: the same focal points, visited either
// scanline-by-scanline (depth innermost) or nappe-by-nappe (depth outermost).
// The delay engines are order-sensitive (TABLEFREE tracks PWL segments
// incrementally; TABLESTEER streams one table slice per nappe), so the order
// is an explicit, first-class parameter.
//
// For parallel reconstruction the volume is partitioned along the
// *outermost* loop axis of the chosen order (depth nappes for
// kNappeByNappe, theta scanline groups for kScanlineByScanline): each
// worker sweeps a contiguous ScanRange with its own cursor, so an
// order-sensitive engine still sees a smooth in-order point stream inside
// its range — only the one-off seek at the range start differs from the
// serial sweep, and delay *values* never depend on the visit order.
#ifndef US3D_IMAGING_SCAN_ORDER_H
#define US3D_IMAGING_SCAN_ORDER_H

#include <cstdint>
#include <utility>
#include <vector>

#include "imaging/focal_block.h"
#include "imaging/volume.h"

namespace us3d::imaging {

enum class ScanOrder {
  kScanlineByScanline,  ///< for theta { for phi { for depth } } }
  kNappeByNappe,        ///< for depth { for theta { for phi } } }
};

const char* to_string(ScanOrder order);

/// Contiguous slab of the outermost loop axis: [outer_begin, outer_end).
/// For kNappeByNappe the axis is depth; for kScanlineByScanline it is theta.
struct ScanRange {
  int outer_begin = 0;
  int outer_end = 0;

  int extent() const { return outer_end - outer_begin; }
  bool empty() const { return outer_end <= outer_begin; }
  bool operator==(const ScanRange&) const = default;
};

/// Size of the outermost loop axis of `order` (n_depth or n_theta).
int outer_extent(const VolumeSpec& spec, ScanOrder order);

/// The whole volume as one range.
ScanRange full_scan_range(const VolumeSpec& spec, ScanOrder order);

/// Splits the outermost axis into at most `parts` contiguous, non-empty,
/// near-equal ranges covering it exactly (fewer when the axis is shorter
/// than `parts`). Concatenating the ranges in return order reproduces the
/// serial sweep.
std::vector<ScanRange> partition_scan(const VolumeSpec& spec, ScanOrder order,
                                      int parts);

/// Stateful cursor over a VolumeGrid in a given order. Value-semantic;
/// `next()` returns false when the sweep is complete. The two-argument
/// form sweeps the whole volume; the range form sweeps one outer-axis slab.
class ScanCursor {
 public:
  ScanCursor(const VolumeGrid& grid, ScanOrder order);
  ScanCursor(const VolumeGrid& grid, ScanOrder order, const ScanRange& range);

  /// Advances to the next focal point; fills `out`. Returns false at end.
  bool next(FocalPoint& out);

  /// Sequential position of the *next* point to be produced, in [0, total].
  std::int64_t position() const { return produced_; }
  std::int64_t total() const;
  ScanOrder order() const { return order_; }
  const ScanRange& range() const { return range_; }

  void reset();

 private:
  const VolumeGrid* grid_;  // non-owning; cursor must not outlive grid
  ScanOrder order_;
  ScanRange range_;
  int a_ = 0, b_ = 0, c_ = 0;  // loop counters, outermost..innermost
  std::int64_t produced_ = 0;
};

/// Decomposes a ScanRange into maximal smooth-order runs (FocalBlocks): the
/// exact point stream of ScanCursor, chopped into blocks of at most
/// `max_points` that additionally never cross an outer-axis boundary
/// (nappe strips for kNappeByNappe, scanline-slab strips for
/// kScanlineByScanline). Concatenating the blocks reproduces the per-point
/// sweep, so feeding them to an order-sensitive engine is equivalent to
/// feeding the points one by one.
///
/// The caller supplies the reusable point storage; each produced FocalBlock
/// views into it and is invalidated by the next `next()` call. The buffer
/// grows to at most `max_points` entries once and is then reused, which is
/// what keeps the per-frame hot path allocation-free.
class BlockCursor {
 public:
  BlockCursor(const VolumeGrid& grid, ScanOrder order, const ScanRange& range,
              int max_points, std::vector<FocalPoint>& buffer);

  /// Fills `out` with the next run; returns false when the sweep is done.
  bool next(FocalBlock& out);

 private:
  /// Outer-axis index of a point under the active order.
  int outer_of(const FocalPoint& fp) const {
    return order_ == ScanOrder::kNappeByNappe ? fp.i_depth : fp.i_theta;
  }

  ScanCursor cursor_;
  ScanOrder order_;
  int max_points_;
  std::vector<FocalPoint>* buffer_;  // non-owning; caller-provided scratch
  FocalPoint pending_{};             // one-point lookahead across blocks
  bool has_pending_ = false;
};

/// Visits every focal point in the requested order.
template <typename Fn>
void for_each_focal_point(const VolumeGrid& grid, ScanOrder order, Fn&& fn) {
  ScanCursor cursor(grid, order);
  FocalPoint fp;
  while (cursor.next(fp)) fn(fp);
}

/// Visits the focal points of one outer-axis slab in the requested order.
template <typename Fn>
void for_each_focal_point(const VolumeGrid& grid, ScanOrder order,
                          const ScanRange& range, Fn&& fn) {
  ScanCursor cursor(grid, order, range);
  FocalPoint fp;
  while (cursor.next(fp)) fn(fp);
}

/// Visits one slab as maximal smooth-order runs using caller-owned point
/// storage (see BlockCursor for the reuse contract).
template <typename Fn>
void for_each_focal_block(const VolumeGrid& grid, ScanOrder order,
                          const ScanRange& range, int max_points,
                          std::vector<FocalPoint>& buffer, Fn&& fn) {
  BlockCursor cursor(grid, order, range, max_points, buffer);
  FocalBlock block;
  while (cursor.next(block)) fn(block);
}

/// Convenience overload with its own temporary buffer (tests, one-shots).
template <typename Fn>
void for_each_focal_block(const VolumeGrid& grid, ScanOrder order,
                          const ScanRange& range, int max_points, Fn&& fn) {
  std::vector<FocalPoint> buffer;
  for_each_focal_block(grid, order, range, max_points, buffer,
                       std::forward<Fn>(fn));
}

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_SCAN_ORDER_H
