// Scan orders from Algorithm 1: the same focal points, visited either
// scanline-by-scanline (depth innermost) or nappe-by-nappe (depth outermost).
// The delay engines are order-sensitive (TABLEFREE tracks PWL segments
// incrementally; TABLESTEER streams one table slice per nappe), so the order
// is an explicit, first-class parameter.
//
// For parallel reconstruction the volume is partitioned along the
// *outermost* loop axis of the chosen order (depth nappes for
// kNappeByNappe, theta scanline groups for kScanlineByScanline): each
// worker sweeps a contiguous ScanRange with its own cursor, so an
// order-sensitive engine still sees a smooth in-order point stream inside
// its range — only the one-off seek at the range start differs from the
// serial sweep, and delay *values* never depend on the visit order.
#ifndef US3D_IMAGING_SCAN_ORDER_H
#define US3D_IMAGING_SCAN_ORDER_H

#include <cstdint>
#include <vector>

#include "imaging/volume.h"

namespace us3d::imaging {

enum class ScanOrder {
  kScanlineByScanline,  ///< for theta { for phi { for depth } } }
  kNappeByNappe,        ///< for depth { for theta { for phi } } }
};

const char* to_string(ScanOrder order);

/// Contiguous slab of the outermost loop axis: [outer_begin, outer_end).
/// For kNappeByNappe the axis is depth; for kScanlineByScanline it is theta.
struct ScanRange {
  int outer_begin = 0;
  int outer_end = 0;

  int extent() const { return outer_end - outer_begin; }
  bool empty() const { return outer_end <= outer_begin; }
  bool operator==(const ScanRange&) const = default;
};

/// Size of the outermost loop axis of `order` (n_depth or n_theta).
int outer_extent(const VolumeSpec& spec, ScanOrder order);

/// The whole volume as one range.
ScanRange full_scan_range(const VolumeSpec& spec, ScanOrder order);

/// Splits the outermost axis into at most `parts` contiguous, non-empty,
/// near-equal ranges covering it exactly (fewer when the axis is shorter
/// than `parts`). Concatenating the ranges in return order reproduces the
/// serial sweep.
std::vector<ScanRange> partition_scan(const VolumeSpec& spec, ScanOrder order,
                                      int parts);

/// Stateful cursor over a VolumeGrid in a given order. Value-semantic;
/// `next()` returns false when the sweep is complete. The two-argument
/// form sweeps the whole volume; the range form sweeps one outer-axis slab.
class ScanCursor {
 public:
  ScanCursor(const VolumeGrid& grid, ScanOrder order);
  ScanCursor(const VolumeGrid& grid, ScanOrder order, const ScanRange& range);

  /// Advances to the next focal point; fills `out`. Returns false at end.
  bool next(FocalPoint& out);

  /// Sequential position of the *next* point to be produced, in [0, total].
  std::int64_t position() const { return produced_; }
  std::int64_t total() const;
  ScanOrder order() const { return order_; }
  const ScanRange& range() const { return range_; }

  void reset();

 private:
  const VolumeGrid* grid_;  // non-owning; cursor must not outlive grid
  ScanOrder order_;
  ScanRange range_;
  int a_ = 0, b_ = 0, c_ = 0;  // loop counters, outermost..innermost
  std::int64_t produced_ = 0;
};

/// Visits every focal point in the requested order.
template <typename Fn>
void for_each_focal_point(const VolumeGrid& grid, ScanOrder order, Fn&& fn) {
  ScanCursor cursor(grid, order);
  FocalPoint fp;
  while (cursor.next(fp)) fn(fp);
}

/// Visits the focal points of one outer-axis slab in the requested order.
template <typename Fn>
void for_each_focal_point(const VolumeGrid& grid, ScanOrder order,
                          const ScanRange& range, Fn&& fn) {
  ScanCursor cursor(grid, order, range);
  FocalPoint fp;
  while (cursor.next(fp)) fn(fp);
}

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_SCAN_ORDER_H
