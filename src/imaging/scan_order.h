// Scan orders from Algorithm 1: the same focal points, visited either
// scanline-by-scanline (depth innermost) or nappe-by-nappe (depth outermost).
// The delay engines are order-sensitive (TABLEFREE tracks PWL segments
// incrementally; TABLESTEER streams one table slice per nappe), so the order
// is an explicit, first-class parameter.
#ifndef US3D_IMAGING_SCAN_ORDER_H
#define US3D_IMAGING_SCAN_ORDER_H

#include <cstdint>

#include "imaging/volume.h"

namespace us3d::imaging {

enum class ScanOrder {
  kScanlineByScanline,  ///< for theta { for phi { for depth } } }
  kNappeByNappe,        ///< for depth { for theta { for phi } } }
};

const char* to_string(ScanOrder order);

/// Stateful cursor over a VolumeGrid in a given order. Value-semantic;
/// `next()` returns false when the sweep is complete.
class ScanCursor {
 public:
  ScanCursor(const VolumeGrid& grid, ScanOrder order);

  /// Advances to the next focal point; fills `out`. Returns false at end.
  bool next(FocalPoint& out);

  /// Sequential position of the *next* point to be produced, in [0, total].
  std::int64_t position() const { return produced_; }
  std::int64_t total() const { return grid_->total_points(); }
  ScanOrder order() const { return order_; }

  void reset();

 private:
  const VolumeGrid* grid_;  // non-owning; cursor must not outlive grid
  ScanOrder order_;
  int a_ = 0, b_ = 0, c_ = 0;  // loop counters, outermost..innermost
  std::int64_t produced_ = 0;
};

/// Visits every focal point in the requested order.
template <typename Fn>
void for_each_focal_point(const VolumeGrid& grid, ScanOrder order, Fn&& fn) {
  ScanCursor cursor(grid, order);
  FocalPoint fp;
  while (cursor.next(fp)) fn(fp);
}

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_SCAN_ORDER_H
