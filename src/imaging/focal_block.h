// A contiguous run of focal points in scan order — the unit of work of the
// block-based hot path. A FocalBlock is a *view* over points produced by a
// BlockCursor (scan_order.h): consecutive in the active ScanOrder, never
// crossing an outer-axis boundary, so an order-sensitive delay engine sees
// the same smooth point stream it would see point-by-point. In
// kNappeByNappe order every block therefore lies inside one nappe and
// `uniform_depth` is true — which is what lets TABLESTEER hoist the
// reference-table read out of its inner loop.
#ifndef US3D_IMAGING_FOCAL_BLOCK_H
#define US3D_IMAGING_FOCAL_BLOCK_H

#include <span>

#include "imaging/focal_point.h"

namespace us3d::imaging {

struct FocalBlock {
  /// The run's points, consecutive in scan order. The view is only valid
  /// until the producing cursor advances (its buffer is reused per block).
  std::span<const FocalPoint> points{};
  /// True when every point shares the same i_depth (always the case for
  /// kNappeByNappe blocks, which never span two nappes).
  bool uniform_depth = false;

  int size() const { return static_cast<int>(points.size()); }
  bool empty() const { return points.empty(); }
  const FocalPoint& operator[](int i) const {
    return points[static_cast<std::size_t>(i)];
  }
  const FocalPoint& front() const { return points.front(); }
};

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_FOCAL_BLOCK_H
