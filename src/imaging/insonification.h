// Acquisition planning: how many insonifications (shots) reconstruct one
// volume, how often the delay table must be re-fetched, and whether the
// target volume rate is acoustically feasible (Sec. V-B's "64
// insonifications per volume, 256 scanlines/insonification, 15 Hz, i.e.
// 960 insonifications/s" design point).
#ifndef US3D_IMAGING_INSONIFICATION_H
#define US3D_IMAGING_INSONIFICATION_H

#include <cstdint>

#include "imaging/volume.h"

namespace us3d::imaging {

struct AcquisitionPlan {
  int shots_per_volume = 0;       ///< insonifications per reconstructed volume
  int scanlines_per_shot = 0;     ///< parallel receive lines per shot
  double volume_rate_hz = 0.0;    ///< target volumes (frames) per second

  double shots_per_second() const {
    return volume_rate_hz * shots_per_volume;
  }
};

/// Builds the paper's design point for a grid: chooses scanlines_per_shot =
/// n_theta*n_phi / shots_per_volume (must divide evenly).
AcquisitionPlan make_plan(const VolumeSpec& volume, int shots_per_volume,
                          double volume_rate_hz);

/// Two-way time of flight to the deepest focal point: the minimum interval
/// between successive insonifications.
double round_trip_seconds(const VolumeSpec& volume, double speed_of_sound);

/// Highest volume rate the acoustics permit for a plan (ignoring compute):
/// 1 / (shots_per_volume * round_trip).
double max_acoustic_volume_rate(const VolumeSpec& volume,
                                double speed_of_sound, int shots_per_volume);

/// True when the plan's shot rate leaves non-negative slack vs. acoustics.
bool is_acoustically_feasible(const AcquisitionPlan& plan,
                              const VolumeSpec& volume,
                              double speed_of_sound);

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_INSONIFICATION_H
