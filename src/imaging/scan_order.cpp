#include "imaging/scan_order.h"

#include "common/contracts.h"

namespace us3d::imaging {

const char* to_string(ScanOrder order) {
  switch (order) {
    case ScanOrder::kScanlineByScanline:
      return "scanline-by-scanline";
    case ScanOrder::kNappeByNappe:
      return "nappe-by-nappe";
  }
  return "?";
}

int outer_extent(const VolumeSpec& spec, ScanOrder order) {
  return order == ScanOrder::kNappeByNappe ? spec.n_depth : spec.n_theta;
}

ScanRange full_scan_range(const VolumeSpec& spec, ScanOrder order) {
  return ScanRange{0, outer_extent(spec, order)};
}

std::vector<ScanRange> partition_scan(const VolumeSpec& spec, ScanOrder order,
                                      int parts) {
  US3D_EXPECTS(parts > 0);
  const int extent = outer_extent(spec, order);
  const int n = parts < extent ? parts : extent;
  std::vector<ScanRange> ranges;
  ranges.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
  // First (extent % n) ranges get one extra slab so sizes differ by <= 1.
  int begin = 0;
  for (int i = 0; i < n; ++i) {
    const int size = extent / n + (i < extent % n ? 1 : 0);
    ranges.push_back(ScanRange{begin, begin + size});
    begin += size;
  }
  US3D_ENSURES(begin == extent);
  return ranges;
}

ScanCursor::ScanCursor(const VolumeGrid& grid, ScanOrder order)
    : ScanCursor(grid, order, full_scan_range(grid.spec(), order)) {}

ScanCursor::ScanCursor(const VolumeGrid& grid, ScanOrder order,
                       const ScanRange& range)
    : grid_(&grid), order_(order), range_(range), a_(range.outer_begin) {
  US3D_EXPECTS(range.outer_begin >= 0 &&
               range.outer_end <= outer_extent(grid.spec(), order) &&
               range.outer_begin <= range.outer_end);
}

std::int64_t ScanCursor::total() const {
  const VolumeSpec& s = grid_->spec();
  const std::int64_t inner =
      order_ == ScanOrder::kNappeByNappe
          ? static_cast<std::int64_t>(s.n_theta) * s.n_phi
          : static_cast<std::int64_t>(s.n_phi) * s.n_depth;
  return inner * range_.extent();
}

bool ScanCursor::next(FocalPoint& out) {
  const VolumeSpec& s = grid_->spec();
  if (produced_ >= total()) return false;
  switch (order_) {
    case ScanOrder::kScanlineByScanline:
      // a = theta, b = phi, c = depth (depth innermost).
      out = grid_->focal_point(a_, b_, c_);
      if (++c_ == s.n_depth) {
        c_ = 0;
        if (++b_ == s.n_phi) {
          b_ = 0;
          ++a_;
        }
      }
      break;
    case ScanOrder::kNappeByNappe:
      // a = depth, b = theta, c = phi (phi innermost).
      out = grid_->focal_point(b_, c_, a_);
      if (++c_ == s.n_phi) {
        c_ = 0;
        if (++b_ == s.n_theta) {
          b_ = 0;
          ++a_;
        }
      }
      break;
  }
  ++produced_;
  return true;
}

void ScanCursor::reset() {
  a_ = range_.outer_begin;
  b_ = c_ = 0;
  produced_ = 0;
}

BlockCursor::BlockCursor(const VolumeGrid& grid, ScanOrder order,
                         const ScanRange& range, int max_points,
                         std::vector<FocalPoint>& buffer)
    : cursor_(grid, order, range),
      order_(order),
      max_points_(max_points),
      buffer_(&buffer) {
  US3D_EXPECTS(max_points > 0);
}

bool BlockCursor::next(FocalBlock& out) {
  std::vector<FocalPoint>& buf = *buffer_;
  buf.clear();
  if (!has_pending_) {
    FocalPoint fp;
    if (!cursor_.next(fp)) return false;
    pending_ = fp;
    has_pending_ = true;
  }
  const int outer = outer_of(pending_);
  bool uniform_depth = true;
  const int first_depth = pending_.i_depth;
  // Consume the lookahead point, then extend the run until the cap, an
  // outer-axis boundary, or the end of the range.
  while (has_pending_ && outer_of(pending_) == outer &&
         static_cast<int>(buf.size()) < max_points_) {
    uniform_depth = uniform_depth && pending_.i_depth == first_depth;
    buf.push_back(pending_);
    has_pending_ = cursor_.next(pending_);
  }
  out.points = std::span<const FocalPoint>(buf.data(), buf.size());
  out.uniform_depth = uniform_depth;
  return true;
}

}  // namespace us3d::imaging
