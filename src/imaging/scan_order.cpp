#include "imaging/scan_order.h"

#include "common/contracts.h"

namespace us3d::imaging {

const char* to_string(ScanOrder order) {
  switch (order) {
    case ScanOrder::kScanlineByScanline:
      return "scanline-by-scanline";
    case ScanOrder::kNappeByNappe:
      return "nappe-by-nappe";
  }
  return "?";
}

ScanCursor::ScanCursor(const VolumeGrid& grid, ScanOrder order)
    : grid_(&grid), order_(order) {}

bool ScanCursor::next(FocalPoint& out) {
  const VolumeSpec& s = grid_->spec();
  if (produced_ >= total()) return false;
  switch (order_) {
    case ScanOrder::kScanlineByScanline:
      // a = theta, b = phi, c = depth (depth innermost).
      out = grid_->focal_point(a_, b_, c_);
      if (++c_ == s.n_depth) {
        c_ = 0;
        if (++b_ == s.n_phi) {
          b_ = 0;
          ++a_;
        }
      }
      break;
    case ScanOrder::kNappeByNappe:
      // a = depth, b = theta, c = phi (phi innermost).
      out = grid_->focal_point(b_, c_, a_);
      if (++c_ == s.n_phi) {
        c_ = 0;
        if (++b_ == s.n_theta) {
          b_ = 0;
          ++a_;
        }
      }
      break;
  }
  ++produced_;
  return true;
}

void ScanCursor::reset() {
  a_ = b_ = c_ = 0;
  produced_ = 0;
}

}  // namespace us3d::imaging
