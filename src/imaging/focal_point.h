// A single focal point of the imaging volume: grid indices, spherical
// coordinates and the Cartesian position from Eq. (5) of the paper:
//   S = (r cos(phi) sin(theta), r sin(phi), r cos(phi) cos(theta)).
#ifndef US3D_IMAGING_FOCAL_POINT_H
#define US3D_IMAGING_FOCAL_POINT_H

#include "common/vec3.h"

namespace us3d::imaging {

struct FocalPoint {
  int i_theta = 0;
  int i_phi = 0;
  int i_depth = 0;
  double theta = 0.0;   ///< azimuth steering angle [rad]
  double phi = 0.0;     ///< elevation steering angle [rad]
  double radius = 0.0;  ///< distance from the origin [m]
  Vec3 position{};      ///< Cartesian coordinates [m]
};

}  // namespace us3d::imaging

#endif  // US3D_IMAGING_FOCAL_POINT_H
