// E1 — Table I system specification and the Sec. II-B/II-C/V-A/V-B sizing
// chain: why naive delay tables are impossible and what the paper's
// alternatives store instead.
#include <iostream>

#include "bench_util.h"
#include "common/angles.h"
#include "delay/table_sizing.h"
#include "imaging/system_config.h"

int main() {
  using namespace us3d;
  const imaging::SystemConfig cfg = imaging::paper_system();
  bench::banner("E1", "System specification and delay-table sizing");

  bench::section("Table I system specification");
  MarkdownTable spec({"Parameter", "Value"});
  spec.add_row({"Speed of sound c", format_double(cfg.speed_of_sound, 0) + " m/s"})
      .add_row({"Center frequency fc",
                format_si(cfg.probe.center_frequency_hz, "Hz", 0)})
      .add_row({"Bandwidth B", format_si(cfg.probe.bandwidth_hz, "Hz", 0)})
      .add_row({"Matrix size", std::to_string(cfg.probe.elements_x) + "x" +
                                   std::to_string(cfg.probe.elements_y)})
      .add_row({"Wavelength", format_double(cfg.wavelength_m() * 1e3, 3) + " mm"})
      .add_row({"Pitch (lambda/2)",
                format_double(cfg.probe.pitch_m * 1e3, 4) + " mm"})
      .add_row({"Aperture", format_double(cfg.probe.aperture_x_m() * 1e3, 2) +
                                " mm"})
      .add_row({"Volume",
                format_double(rad_to_deg(cfg.volume.theta_span_rad), 0) +
                    " deg x " +
                    format_double(rad_to_deg(cfg.volume.phi_span_rad), 0) +
                    " deg x " +
                    format_double(cfg.volume.max_depth_m / cfg.wavelength_m(), 0) +
                    " lambda"})
      .add_row({"Focal points", std::to_string(cfg.volume.n_theta) + "x" +
                                    std::to_string(cfg.volume.n_phi) + "x" +
                                    std::to_string(cfg.volume.n_depth)})
      .add_row({"Sampling frequency fs",
                format_si(cfg.sampling_frequency_hz, "Hz", 0)})
      .add_row({"Delay grain", format_double(cfg.sample_period_s() * 1e9, 2) +
                                   " ns"})
      .add_row({"Echo buffer", format_count(static_cast<double>(
                                   cfg.echo_buffer_samples())) +
                                   " samples (" +
                                   std::to_string(cfg.delay_index_bits()) +
                                   "-bit index)"});
  spec.print(std::cout);

  bench::section("Naive full delay table (Sec. II-B/II-C)");
  const auto naive = delay::naive_table_sizing(cfg, cfg.delay_index_bits());
  bench::PaperComparison cmp;
  cmp.row("Delay coefficients per frame", "~164e9",
          format_count(static_cast<double>(naive.coefficients)))
      .row("Coefficient accesses per second (15 fps)", "~2.5e12",
           format_count(naive.accesses_per_second))
      .row("Table storage (13b/coefficient)", "(impractical)",
           format_bytes(naive.total_bytes))
      .row("Access bandwidth", "multiple TB/s",
           format_bytes(naive.bandwidth_bytes_per_second) + "/s");
  cmp.print();

  bench::section("TABLESTEER reference table (Sec. V-A)");
  const auto ref18 = delay::reference_table_sizing(cfg, fx::kRefDelay18);
  bench::PaperComparison cmp2;
  cmp2.row("Raw entries (ex x ey x dp)", "10e6",
           format_count(static_cast<double>(ref18.raw_entries)))
      .row("After X/Y symmetry folding", "2.5e6",
           format_count(static_cast<double>(ref18.folded_entries)))
      .row("Folded storage at 18b", "45 Mb", format_bits(ref18.folded_bits));
  cmp2.print();

  bench::section("Steering correction set (Sec. V-B)");
  const auto steer = delay::steering_set_sizing(cfg, fx::kCorrection18);
  bench::PaperComparison cmp3;
  cmp3.row("x coefficients (ex x nphi/2 x ntheta)", "100x64x128 = 819200",
           format_count(static_cast<double>(steer.x_coefficients)))
      .row("y coefficients (ey x nphi)", "100x128 = 12800",
           format_count(static_cast<double>(steer.y_coefficients)))
      .row("Total", "832e3",
           format_count(static_cast<double>(steer.total_coefficients)))
      .row("Storage at 18b", "14.3 Mib",
           format_double(steer.total_bits / 1024.0 / 1024.0, 2) + " Mib");
  cmp3.print();

  bench::section("DRAM-streamed deployment (Sec. V-B)");
  const auto stream18 = delay::streaming_sizing(cfg, fx::kRefDelay18,
                                                fx::kCorrection18, 128, 1024);
  const auto stream14 = delay::streaming_sizing(cfg, fx::kRefDelay14,
                                                fx::kCorrection14, 128, 1024);
  bench::PaperComparison cmp4;
  cmp4.row("Table fetches per second", "960",
           format_double(stream18.table_fetches_per_second, 0))
      .row("DRAM bandwidth (18b)", "5.3 GB/s",
           format_bytes(stream18.bandwidth_bytes_per_second) + "/s")
      .row("DRAM bandwidth (14b)", "4.1 GB/s",
           format_bytes(stream14.bandwidth_bytes_per_second) + "/s")
      .row("On-chip slice (128 x 1k x 18b)", "2.3 Mb",
           format_bits(stream18.on_chip_slice_bits))
      .row("On-chip total (slice + corrections)", "2.3 + 14.3 Mb",
           format_bits(stream18.on_chip_total_bits));
  cmp4.print();
  return 0;
}
