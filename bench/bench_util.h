// Shared helpers for the experiment harnesses: consistent banners and
// paper-vs-measured rows so EXPERIMENTS.md can quote bench output directly.
#ifndef US3D_BENCH_BENCH_UTIL_H
#define US3D_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>

#include "common/table_io.h"

namespace us3d::bench {

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n\n";
}

inline void section(const std::string& name) {
  std::cout << "\n--- " << name << " ---\n";
}

/// A two-column comparison table of paper-reported vs measured values.
class PaperComparison {
 public:
  PaperComparison() : table_({"Quantity", "Paper", "Measured"}) {}

  PaperComparison& row(const std::string& what, const std::string& paper,
                       const std::string& measured) {
    table_.add_row({what, paper, measured});
    return *this;
  }

  void print() { std::cout << table_.to_string(); }

 private:
  MarkdownTable table_;
};

}  // namespace us3d::bench

#endif  // US3D_BENCH_BENCH_UTIL_H
