// A5 — Extension: synthetic-aperture (diverging-wave) support via multiple
// precalculated delay tables, the mode Sec. V says TABLESTEER can support
// "at extra hardware cost". Quantifies that cost (repository storage, DRAM
// bandwidth) and the accuracy of steering a displaced-origin table.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "delay/exact.h"
#include "delay/synthetic_aperture.h"
#include "delay/table_sizing.h"
#include "imaging/scan_order.h"
#include "probe/directivity.h"

int main() {
  using namespace us3d;
  bench::banner("A5", "Synthetic-aperture extension (Sec. V remark)");

  const auto paper = imaging::paper_system();
  bench::section("repository cost vs number of virtual sources "
                 "(paper system)");
  MarkdownTable cost({"virtual sources", "repository storage",
                      "on-chip option?", "DRAM bandwidth"});
  for (const int n : {1, 4, 16, 64}) {
    const auto plan = delay::diverging_wave_plan(n, 20.0e-3);
    // Sizing only (tables for the paper system are large; accounting does
    // not require materializing them).
    const auto single =
        delay::reference_table_sizing(paper, fx::kRefDelay18);
    const double bits = single.folded_bits * n;
    cost.add_row({std::to_string(n), format_bits(bits),
                  bits <= 45.0e6 ? "yes (45 Mb)" : "no (off-chip repository)",
                  "unchanged (one table per shot)"});
    (void)plan;
  }
  cost.print(std::cout);

  bench::section("accuracy vs origin displacement (scaled system, "
                 "exhaustive within -6dB cone)");
  const auto cfg = imaging::scaled_system(10, 16, 80);
  const auto dir = probe::Directivity::from_db_down(
      cfg.probe.pitch_m, cfg.wavelength_m(), 6.0);
  const imaging::VolumeGrid grid(cfg.volume);
  const probe::MatrixProbe probe(cfg.probe);

  MarkdownTable acc({"origin z [lambda]", "mean |err| [samples]",
                     "max |err| [samples]"});
  for (const double z_lambda : {0.0, 2.0, 5.0, 10.0, 20.0}) {
    const double z = -z_lambda * cfg.wavelength_m();
    const delay::SyntheticAperturePlan plan{{z}};
    delay::SyntheticApertureSteerEngine engine(cfg, plan);
    delay::ExactDelayEngine exact(cfg);
    const Vec3 origin{0.0, 0.0, z};
    engine.begin_frame(origin);
    exact.begin_frame(origin);
    std::vector<std::int32_t> a(
        static_cast<std::size_t>(engine.element_count())),
        b(a.size());
    double sum = 0.0, worst = 0.0;
    std::int64_t n = 0;
    imaging::for_each_focal_point(
        grid, imaging::ScanOrder::kNappeByNappe,
        [&](const imaging::FocalPoint& fp) {
          engine.compute(fp, a);
          exact.compute(fp, b);
          for (int e = 0; e < engine.element_count(); ++e) {
            if (!dir.accepts(probe.element_position(e), fp.position)) {
              continue;
            }
            const double err =
                std::abs(a[static_cast<std::size_t>(e)] -
                         b[static_cast<std::size_t>(e)]);
            sum += err;
            worst = std::max(worst, err);
            ++n;
          }
        });
    acc.add_row({format_double(z_lambda, 0),
                 format_double(sum / static_cast<double>(n), 3),
                 format_double(worst, 0)});
  }
  acc.print(std::cout);

  std::cout << "\nA centred origin reproduces plain TABLESTEER. Moving the "
               "virtual source behind\nthe probe adds a transmit-side "
               "error that the receive-only steering plane cannot\ncancel "
               "— it grows with displacement, which is why synthetic "
               "aperture needs one\nprecalculated table per origin (and "
               "why those tables live off chip).\n";
  return 0;
}
