// E2 — Algorithm 1 / Figure 1: the two equivalent beamforming orders and
// the locality property the nappe order buys (radius changes one step at a
// time, which is what both TABLEFREE segment tracking and TABLESTEER slice
// streaming exploit).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"

int main() {
  using namespace us3d;
  bench::banner("E2", "Scan orders (Algorithm 1 / Figure 1)");

  const imaging::SystemConfig cfg = imaging::scaled_system(8, 16, 100);
  const imaging::VolumeGrid grid(cfg.volume);

  for (const auto order : {imaging::ScanOrder::kScanlineByScanline,
                           imaging::ScanOrder::kNappeByNappe}) {
    bench::section(std::string("first 8 focal points, ") +
                   imaging::to_string(order));
    MarkdownTable t({"#", "i_theta", "i_phi", "i_depth", "radius [mm]"});
    int shown = 0;
    imaging::for_each_focal_point(grid, order,
                                  [&](const imaging::FocalPoint& fp) {
      if (shown < 8) {
        t.add_row({std::to_string(shown), std::to_string(fp.i_theta),
                   std::to_string(fp.i_phi), std::to_string(fp.i_depth),
                   format_double(fp.radius * 1e3, 3)});
      }
      ++shown;
    });
    t.print(std::cout);
  }

  bench::section("radius locality (drives delay-generation efficiency)");
  MarkdownTable loc({"Order", "mean |dr| per step [um]",
                     "max |dr| per step [um]", "depth resets"});
  for (const auto order : {imaging::ScanOrder::kScanlineByScanline,
                           imaging::ScanOrder::kNappeByNappe}) {
    double prev = -1.0, sum = 0.0, worst = 0.0;
    std::int64_t n = 0, resets = 0;
    const double reset_threshold =
        (cfg.volume.max_depth_m - cfg.volume.min_depth_m) / 2.0;
    imaging::for_each_focal_point(grid, order,
                                  [&](const imaging::FocalPoint& fp) {
      if (prev >= 0.0) {
        const double jump = std::abs(fp.radius - prev);
        sum += jump;
        worst = std::max(worst, jump);
        if (jump > reset_threshold) ++resets;
        ++n;
      }
      prev = fp.radius;
    });
    loc.add_row({imaging::to_string(order),
                 format_double(sum / static_cast<double>(n) * 1e6, 3),
                 format_double(worst * 1e6, 1), std::to_string(resets)});
  }
  loc.print(std::cout);

  std::cout << "\nBoth orders visit all " << grid.total_points()
            << " focal points; the nappe order never moves more than one\n"
               "depth step at a time, while the scanline order resets the "
               "whole depth range\nonce per line (Sec. II-A co-design "
               "remark).\n";
  return 0;
}
