// E7 — Sec. VI-A TABLESTEER accuracy: the far-field (first-order Taylor)
// steering error over the full paper volume, raw and filtered by element
// directivity. Paper: theoretical bound ~214 samples (6.7 us), observed
// max 99 samples (3.1 us), average 44.641 ns (~1.43 samples).
#include <iostream>

#include "bench_util.h"
#include "common/angles.h"
#include "delay/error_harness.h"
#include "delay/tablesteer.h"
#include "probe/apodization.h"
#include "probe/directivity.h"

int main() {
  using namespace us3d;
  bench::banner("E7", "TABLESTEER steering accuracy (Sec. VI-A)");

  const imaging::SystemConfig cfg = imaging::paper_system();
  const delay::SweepStrides strides{8, 8, 20, 5, 5};

  bench::section("algorithmic (far-field Taylor) error, paper system");
  MarkdownTable t({"Directivity filter", "mean |err| [samples]",
                   "mean |err| [ns]", "max |err| [samples]",
                   "max |err| [us]"});
  // Unfiltered, then a range of acceptance cones around the paper's
  // "beyond the elements' directivity" argument.
  {
    const auto rep = delay::measure_steering_algorithmic_error(cfg, strides);
    t.add_row({"none",
               format_double(rep.samples_all.mean_abs(), 3),
               format_double(cfg.samples_to_seconds(
                                 rep.samples_all.mean_abs()) * 1e9, 1),
               format_double(rep.samples_all.max_abs(), 1),
               format_double(rep.max_error_seconds_all * 1e6, 2)});
  }
  for (const double db : {3.0, 6.0, 9.0}) {
    const auto dir = probe::Directivity::from_db_down(
        cfg.probe.pitch_m, cfg.wavelength_m(), db);
    const auto rep =
        delay::measure_steering_algorithmic_error(cfg, strides, dir);
    t.add_row({"-" + format_double(db, 0) + " dB cone (" +
                   format_double(rad_to_deg(dir.cutoff_angle()), 1) + " deg)",
               format_double(rep.samples_filtered.mean_abs(), 3),
               format_double(rep.mean_error_seconds_filtered * 1e9, 1),
               format_double(rep.samples_filtered.max_abs(), 1),
               format_double(rep.max_error_seconds_filtered * 1e6, 2)});
  }
  t.print(std::cout);

  // The -9 dB cone (~60 deg) matches the paper's filtering best: its mean
  // lands on the reported 44.6 ns almost exactly. The max is sensitive to
  // how densely the near-field corner cases are swept.
  bench::PaperComparison cmp;
  const auto dir9 = probe::Directivity::from_db_down(
      cfg.probe.pitch_m, cfg.wavelength_m(), 9.0);
  const auto rep9 =
      delay::measure_steering_algorithmic_error(cfg, strides, dir9);
  cmp.row("Theoretical worst case", "~6.7 us (214 samples)",
          format_double(rep9.max_error_seconds_all * 1e6, 2) + " us (" +
              format_double(rep9.samples_all.max_abs(), 0) + " samples, unfiltered)")
      .row("Observed max (within directivity)", "3.1 us (99 samples)",
           format_double(rep9.max_error_seconds_filtered * 1e6, 2) + " us (" +
               format_double(rep9.samples_filtered.max_abs(), 0) + " samples)")
      .row("Average (within directivity)", "44.641 ns (~1.43 samples)",
           format_double(rep9.mean_error_seconds_filtered * 1e9, 1) + " ns (" +
               format_double(rep9.samples_filtered.mean_abs(), 2) + " samples)");
  cmp.print();
  const auto dir6 = probe::Directivity::from_db_down(
      cfg.probe.pitch_m, cfg.wavelength_m(), 6.0);

  bench::section("apodization-weighted error (the argument as the paper "
                 "makes it)");
  {
    const probe::MatrixProbe probe(cfg.probe);
    const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
    const auto soft = probe::Directivity::from_db_down(
        cfg.probe.pitch_m, cfg.wavelength_m(), 6.0);
    const auto weighted = delay::measure_steering_weighted_error(
        cfg, delay::SweepStrides{16, 16, 50, 7, 7}, apod, soft);
    MarkdownTable w({"Metric", "Value"});
    w.add_row({"Weighted mean |err| (Hann x directivity)",
               format_double(weighted.weighted_mean_abs_samples, 3) +
                   " samples"})
        .add_row({"Max |err| among significant pairs (w > 1% of max)",
                  format_double(weighted.max_abs_samples_significant, 1) +
                      " samples"});
    w.print(std::cout);
    std::cout << "\nWeighting by actual beamforming contribution (instead "
                 "of a hard cone) pushes the\neffective error well below "
                 "the raw mean: the worst errors carry almost no image\n"
                 "energy, which is the paper's Sec. VI-A argument.\n";
  }

  bench::section("full fixed-point engine vs exact (selection error)");
  MarkdownTable fx_table({"Engine", "mean |err| [samples]",
                          "max |err| [samples]",
                          "mean |err| within -6dB cone"});
  for (const auto& ts_cfg : {delay::TableSteerConfig::bits14(),
                             delay::TableSteerConfig::bits18()}) {
    delay::TableSteerEngine engine(cfg, ts_cfg);
    const auto rep = delay::measure_selection_error(
        cfg, engine, imaging::ScanOrder::kNappeByNappe,
        delay::SweepStrides{16, 16, 50, 9, 9}, dir6);
    fx_table.add_row({engine.name(), format_double(rep.all.mean_abs(), 2),
                      format_double(rep.all.max_abs(), 0),
                      format_double(rep.filtered.mean_abs(), 2)});
  }
  fx_table.print(std::cout);
  std::cout << "\nPaper Table II reports avg 1.55 (14b) / 1.44 (18b), "
               "max 100, over the apodized volume.\n";
  return 0;
}
