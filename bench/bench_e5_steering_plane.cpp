// E5 — Figure 3b/3c/3d: steering the reference table. Emits the correction
// plane across the aperture for a steered line of sight (Fig. 3c is this
// plane) and a section of the compensated delay table (Fig. 3d).
#include <iostream>

#include "bench_util.h"
#include "common/angles.h"
#include "delay/exact.h"
#include "delay/reference_table.h"
#include "delay/steering.h"
#include "imaging/system_config.h"
#include "probe/transducer.h"

int main() {
  using namespace us3d;
  bench::banner("E5", "Steering correction plane (Figure 3c/3d)");

  const imaging::SystemConfig cfg = imaging::paper_system();
  const probe::MatrixProbe probe(cfg.probe);
  const double theta = deg_to_rad(20.0);
  const double phi = deg_to_rad(10.0);

  bench::section("correction plane [us] across the aperture (Fig. 3c)");
  std::cout << "steering: theta = 20 deg, phi = 10 deg; rows = yD, cols = "
               "xD (every 20th element)\n\n";
  MarkdownTable plane({"yD \\ xD [mm]", "-9.5", "-4.7", "0.1", "4.9", "9.6"});
  for (int iy = 0; iy < probe.elements_y(); iy += 20) {
    std::vector<std::string> row;
    row.push_back(format_double(probe.row_y(iy) * 1e3, 1));
    for (int ix = 0; ix < probe.elements_x(); ix += 20) {
      const double corr_us =
          cfg.samples_to_seconds(delay::steering_correction_samples(
              cfg, theta, phi, probe.column_x(ix), probe.row_y(iy))) *
          1e6;
      row.push_back(format_double(corr_us, 3));
    }
    plane.add_row(std::move(row));
  }
  plane.print(std::cout);
  std::cout << "\nThe correction is a tilted plane through the aperture "
               "centre: linear in xD and yD,\nwith slopes set by "
               "(theta, phi) — exactly Eq. (7).\n";

  bench::section("compensated table section (Fig. 3d): delays [samples] "
                 "along depth for one element row");
  const delay::ReferenceDelayTable table(cfg);
  MarkdownTable sect({"depth idx", "ref delay", "x corr", "y corr",
                      "steered delay"});
  const imaging::VolumeGrid grid(cfg.volume);
  const delay::SteeringCorrections corr(cfg);
  const int ix = 80, iy = 55;
  const int i_theta = 96, i_phi = 81;  // ~theta 20 deg, phi 10 deg
  for (const int k : {0, 50, 150, 300, 500, 750, 999}) {
    const auto ref = table.entry(ix, iy, k);
    const auto cx = corr.x_correction(ix, i_theta, i_phi);
    const auto cy = corr.y_correction(iy, i_phi);
    const double steered = ref.to_real() + cx.to_real() + cy.to_real();
    sect.add_row({std::to_string(k), format_double(ref.to_real(), 2),
                  format_double(cx.to_real(), 2),
                  format_double(cy.to_real(), 2),
                  format_double(steered, 2)});
  }
  sect.print(std::cout);

  bench::section("steering accuracy vs exact for that line of sight");
  MarkdownTable acc({"depth idx", "radius [mm]", "exact [samples]",
                     "steered [samples]", "error [samples]"});
  for (const int k : {0, 10, 50, 150, 500, 999}) {
    const imaging::FocalPoint fp = grid.focal_point(i_theta, i_phi, k);
    const Vec3 elem = probe.element_position(ix, iy);
    const double exact = cfg.seconds_to_samples(delay::two_way_delay_s(
        Vec3{}, fp.position, elem, cfg.speed_of_sound));
    const double steered = delay::steered_delay_samples(cfg, fp, elem);
    acc.add_row({std::to_string(k), format_double(fp.radius * 1e3, 2),
                 format_double(exact, 2), format_double(steered, 2),
                 format_double(steered - exact, 3)});
  }
  acc.print(std::cout);
  std::cout << "\nThe far-field error collapses with depth (Sec. V-A): "
               "large at the first\nfocal points, negligible past a few "
               "tens of wavelengths.\n";
  return 0;
}
