// A1 — Ablation: scan order vs TABLEFREE incremental tracking (Sec. II-A:
// "different delay calculation architectures may be generating values at a
// faster rate when aimed at a particular order of processing"). Measures
// tracker stalls in nappe vs scanline order and their frame-rate impact.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "delay/tablefree.h"
#include "hw/tablefree_unit.h"
#include "imaging/scan_order.h"

int main() {
  using namespace us3d;
  bench::banner("A1", "Scan-order ablation for TABLEFREE tracking");

  // Scaled probe, paper-shaped volume (full depth count matters: the
  // scanline order's depth reset is what causes the big jumps).
  const auto cfg = imaging::scaled_system(8, 24, 500);
  const imaging::VolumeGrid grid(cfg.volume);

  MarkdownTable t({"Scan order", "evaluations", "total steps",
                   "steps/evaluation", "max steps (single eval)",
                   "frame rate @167 MHz (paper volume)"});
  const auto paper_cfg = imaging::paper_system();
  for (const auto order : {imaging::ScanOrder::kNappeByNappe,
                           imaging::ScanOrder::kScanlineByScanline}) {
    delay::TableFreeEngine engine(cfg);
    engine.begin_frame(Vec3{});
    std::vector<std::int32_t> out(
        static_cast<std::size_t>(engine.element_count()));
    imaging::for_each_focal_point(
        grid, order,
        [&](const imaging::FocalPoint& fp) { engine.compute(fp, out); });
    const auto stats = engine.tracker_stats();
    const auto timing = hw::analyze_tablefree_timing(
        paper_cfg, stats, hw::TableFreeUnitModel{});
    t.add_row({imaging::to_string(order),
               format_count(static_cast<double>(stats.evaluations)),
               format_count(static_cast<double>(stats.total_steps)),
               format_double(stats.mean_steps_per_evaluation(), 4),
               std::to_string(stats.max_steps_single_evaluation),
               format_double(timing.frame_rate, 2) + " fps"});
  }
  t.print(std::cout);

  std::cout << "\nIn nappe order the sqrt argument moves smoothly, so the "
               "comparator pair of\nFig. 2a almost never steps more than "
               "once. The scanline order resets depth once\nper line, "
               "sweeping the tracker across most of the segment table and "
               "stalling the\nunit — the co-design point the paper makes "
               "in Sec. II-A.\n";
  return 0;
}
