// E6 — Sec. VI-A TABLEFREE accuracy: mean/max delay-selection error of the
// fixed-point PWL datapath vs exact computation, quantized to integer
// selection indices as the paper does. Paper: mean ~0.2489, max 2.
#include <iostream>

#include "bench_util.h"
#include "delay/error_harness.h"
#include "delay/tablefree.h"

int main() {
  using namespace us3d;
  bench::banner("E6", "TABLEFREE delay-selection accuracy (Sec. VI-A)");

  // Exhaustive sweep on a scaled system (every point, every element).
  {
    const auto cfg = imaging::scaled_system(12, 16, 120);
    delay::TableFreeEngine engine(cfg);
    const auto rep = delay::measure_selection_error(
        cfg, engine, imaging::ScanOrder::kNappeByNappe,
        delay::SweepStrides{});
    bench::section("exhaustive sweep, scaled system (12x12 probe, "
                   "16x16x120 volume)");
    bench::PaperComparison cmp;
    cmp.row("Mean |selection error|", "~0.2489 samples",
            format_double(rep.all.mean_abs(), 4) + " samples")
        .row("Max |selection error|", "2 samples",
             format_double(rep.all.max_abs(), 0) + " samples")
        .row("Pairs swept", "(full volume)",
             format_count(static_cast<double>(rep.pairs_total)));
    cmp.print();
  }

  // Strided sweep of the full paper system (100x100 probe).
  {
    const auto cfg = imaging::paper_system();
    delay::TableFreeEngine engine(cfg);
    const auto rep = delay::measure_selection_error(
        cfg, engine, imaging::ScanOrder::kNappeByNappe,
        delay::SweepStrides{8, 8, 25, 7, 7});
    bench::section("strided sweep, paper system (100x100 probe, "
                   "128x128x1000 volume)");
    bench::PaperComparison cmp;
    cmp.row("Mean |selection error|", "~0.2489 samples",
            format_double(rep.all.mean_abs(), 4) + " samples")
        .row("Max |selection error|", "2 samples",
             format_double(rep.all.max_abs(), 0) + " samples")
        .row("Fraction off by >1 sample", "(not reported)",
             format_percent(rep.all.fraction_exceeding(), 3))
        .row("Pairs swept", "(exhaustive in paper)",
             format_count(static_cast<double>(rep.pairs_total)));
    cmp.print();
  }

  // Algorithmic-only error (fixed point disabled): the theoretical
  // component the paper derives (mean ~0.204, max 0.5 before indexing).
  {
    const auto cfg = imaging::scaled_system(12, 16, 120);
    delay::TableFreeConfig tf;
    tf.use_fixed_point = false;
    delay::TableFreeEngine engine(cfg, tf);
    const auto rep = delay::measure_selection_error(
        cfg, engine, imaging::ScanOrder::kNappeByNappe,
        delay::SweepStrides{});
    bench::section("PWL-only error (no fixed point), scaled system");
    bench::PaperComparison cmp;
    cmp.row("Mean |selection error|", "~0.204 (pre-index)",
            format_double(rep.all.mean_abs(), 4) + " samples")
        .row("Max |selection error|", "0.5 (pre-index) -> 1 after rounding",
             format_double(rep.all.max_abs(), 0) + " samples");
    cmp.print();
  }
  return 0;
}
