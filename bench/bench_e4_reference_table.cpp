// E4 — Figure 3a: the reference delay table geometry. Uses the figure's
// own 16x16x500 illustration size plus the paper system, and reports the
// symmetry folding and directivity pruning that shrink the table.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/angles.h"
#include "delay/reference_table.h"
#include "delay/table_sizing.h"
#include "probe/presets.h"

int main() {
  using namespace us3d;
  bench::banner("E4", "Reference delay table (Figure 3a)");

  // The figure's illustration geometry: 16 x 16 x 500.
  imaging::SystemConfig fig = imaging::paper_system();
  fig.probe = probe::figure3_probe();
  fig.volume.n_depth = 500;

  const imaging::SystemConfig paper = imaging::paper_system();

  MarkdownTable t({"System", "Raw entries", "Folded entries", "Folded bits",
                   "Prunable (30 deg cone)", "Prunable (-6dB cone)"});
  const std::vector<const imaging::SystemConfig*> systems = {&fig, &paper};
  for (const imaging::SystemConfig* cfg : systems) {
    const auto sizing = delay::reference_table_sizing(*cfg, fx::kRefDelay18);

    delay::ReferenceTableConfig cone30;
    cone30.pruning = probe::Directivity(cfg->probe.pitch_m,
                                        cfg->wavelength_m(),
                                        deg_to_rad(30.0));
    const delay::ReferenceDelayTable t30(*cfg, cone30);

    delay::ReferenceTableConfig cone6db;
    cone6db.pruning = probe::Directivity::from_db_down(
        cfg->probe.pitch_m, cfg->wavelength_m(), 6.0);
    const delay::ReferenceDelayTable t6(*cfg, cone6db);

    t.add_row({std::to_string(cfg->probe.elements_x) + "x" +
                   std::to_string(cfg->probe.elements_y) + "x" +
                   std::to_string(cfg->volume.n_depth),
               format_count(static_cast<double>(sizing.raw_entries)),
               format_count(static_cast<double>(sizing.folded_entries)),
               format_bits(sizing.folded_bits),
               format_percent(t30.prunable_fraction(), 1),
               format_percent(t6.prunable_fraction(), 1)});
  }
  t.print(std::cout);

  bench::section("Figure 3a dot cloud (paper geometry, depth slices)");
  // For a handful of depths, how many of the 16x16 elements keep their
  // entry under a 30-degree acceptance cone (the pruning shown as missing
  // dots in the figure).
  delay::ReferenceTableConfig cone;
  cone.pruning = probe::Directivity(fig.probe.pitch_m, fig.wavelength_m(),
                                    deg_to_rad(30.0));
  const delay::ReferenceDelayTable table(fig, cone);
  MarkdownTable dots({"depth index", "radius [mm]", "elements kept",
                      "elements pruned"});
  const imaging::VolumeGrid grid(fig.volume);
  for (const int k : {0, 5, 20, 60, 150, 499}) {
    int kept = 0, pruned = 0;
    for (int qx = 0; qx < table.quad_x(); ++qx) {
      for (int qy = 0; qy < table.quad_y(); ++qy) {
        if (table.is_prunable(qx, qy, k)) {
          pruned += 4;  // each quadrant entry represents 4 mirrored elements
        } else {
          kept += 4;
        }
      }
    }
    dots.add_row({std::to_string(k), format_double(grid.radius(k) * 1e3, 2),
                  std::to_string(kept), std::to_string(pruned)});
  }
  dots.print(std::cout);

  std::cout << "\nShallow depths keep only the elements directly below the "
               "on-axis point\n(limited directivity); by a few tens of "
               "wavelengths the whole aperture sees\nthe line of sight — "
               "the cone-shaped dot cloud of Figure 3a.\n";
  return 0;
}
