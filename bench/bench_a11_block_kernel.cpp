// A11 — the block hot path vs the per-voxel hot path. The paper makes
// delay *generation* cheap; this bench tracks whether the host runtime can
// keep up: one virtual DelayEngine call and one scalar accumulate per
// focal point (per-voxel path) against one batched compute_block + SoA
// delay-and-sum per smooth-order run (block path). Reported per engine:
// wall time, voxels/s, speedup, and the measured number of virtual
// dispatches per voxel (counted with a forwarding engine wrapper, so the
// numbers are observed, not assumed). A second sweep forces each SIMD
// backend the host can run (scalar reference, SSE2, AVX2, ...) through the
// block path on the production TABLEFREE engine, so the explicit-SIMD
// kernels have a voxels/s trajectory of their own. A third sweep times the
// quantized int16 row kernels against the double kernels per backend on
// precomputed delay planes (the block-kernel sweep the quantized-path
// acceptance criterion is judged on), reports the one-off echo
// quantization cost separately, and gauges the quantized pipeline's
// deviation from the exact double volume against its declared error
// bounds. Emits BENCH_block.json for the cross-PR trajectory.
//
// Usage: bench_a11_block_kernel [--tiny]
//   --tiny shrinks the workload for CI smoke runs (seconds, not minutes).
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/metrics.h"
#include "beamform/beamformer.h"
#include "beamform/quantized.h"
#include "bench_util.h"
#include "delay/quantized_plane.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/system_config.h"
#include "simd/dispatch.h"

namespace {

using namespace us3d;
using Clock = std::chrono::steady_clock;

/// Forwarding decorator that counts virtual dispatches into the wrapped
/// engine. Lives in the bench, not the library: the library should never
/// need to know it is being counted.
class CountingEngine final : public delay::DelayEngine {
 public:
  explicit CountingEngine(std::unique_ptr<delay::DelayEngine> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  int element_count() const override { return inner_->element_count(); }
  std::unique_ptr<delay::DelayEngine> clone() const override {
    return std::make_unique<CountingEngine>(inner_->clone());
  }

  std::int64_t compute_calls = 0;
  std::int64_t block_calls = 0;
  std::int64_t block_points = 0;

 protected:
  void do_begin_frame(const Vec3& origin) override {
    inner_->begin_frame(origin);
  }
  void do_compute(const imaging::FocalPoint& fp,
                  std::span<std::int32_t> out) override {
    ++compute_calls;
    inner_->compute(fp, out);
  }
  void do_compute_block(const imaging::FocalBlock& block,
                        delay::DelayPlane& plane) override {
    ++block_calls;
    block_points += block.size();
    inner_->compute_block(block, plane);
  }

 private:
  std::unique_ptr<delay::DelayEngine> inner_;
};

struct PathResult {
  double seconds = 0.0;
  double voxels_per_second = 0.0;
  double virtual_calls_per_voxel = 0.0;
};

PathResult run_path(const beamform::Beamformer& bf,
                    const beamform::EchoBuffer& echoes, CountingEngine& engine,
                    beamform::ReconstructPath path, std::int64_t voxels,
                    int repeats) {
  // Warm-up sweep so allocations reach their high-water mark before timing.
  bf.reconstruct(echoes, engine, {.path = path});
  engine.compute_calls = engine.block_calls = engine.block_points = 0;
  const auto t0 = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    bf.reconstruct(echoes, engine, {.path = path});
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double total_voxels = static_cast<double>(voxels) * repeats;
  PathResult result;
  result.seconds = seconds / repeats;
  result.voxels_per_second = seconds > 0.0 ? total_voxels / seconds : 0.0;
  result.virtual_calls_per_voxel =
      static_cast<double>(engine.compute_calls + engine.block_calls) /
      total_voxels;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) tiny = true;
  }

  bench::banner("A11", "block vs per-voxel reconstruction hot path");

  const imaging::SystemConfig cfg =
      tiny ? imaging::scaled_system(6, 10, 40)
           : imaging::scaled_system(12, 24, 120);
  const int repeats = tiny ? 1 : 2;
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const beamform::Beamformer bf(cfg, apod);

  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{
      acoustic::PointScatterer{
          grid.focal_point(cfg.volume.n_theta / 2, cfg.volume.n_phi / 2,
                           cfg.volume.n_depth / 2)
              .position,
          1.0},
  };
  const beamform::EchoBuffer echoes = acoustic::synthesize_echoes(cfg, phantom);
  const std::int64_t voxels = cfg.volume.total_points();

  std::cout << "probe " << cfg.probe.elements_x << 'x' << cfg.probe.elements_y
            << ", volume " << cfg.volume.n_theta << 'x' << cfg.volume.n_phi
            << 'x' << cfg.volume.n_depth << " (" << voxels << " voxels), "
            << repeats << " repeat(s)\n";

  struct EngineCase {
    std::string label;
    std::unique_ptr<delay::DelayEngine> engine;
  };
  std::vector<EngineCase> cases;
  cases.push_back({"EXACT", std::make_unique<delay::ExactDelayEngine>(cfg)});
  cases.push_back({"TABLEFREE",
                   std::make_unique<delay::TableFreeEngine>(cfg)});
  cases.push_back({"TABLESTEER-18b",
                   std::make_unique<delay::TableSteerEngine>(cfg)});
  cases.push_back({"FULLTABLE",
                   std::make_unique<delay::FullTableEngine>(cfg)});
  cases.push_back(
      {"TABLESTEER-SA", std::make_unique<delay::SyntheticApertureSteerEngine>(
                            cfg, delay::diverging_wave_plan(2, 3.0e-3))});

  MarkdownTable table({"engine", "per-voxel [ms]", "block [ms]", "speedup",
                       "block voxels/s", "vcalls/voxel (per-voxel)",
                       "vcalls/voxel (block)"});
  std::ostringstream engines_json;
  for (EngineCase& c : cases) {
    CountingEngine counted(std::move(c.engine));
    const PathResult per_voxel =
        run_path(bf, echoes, counted, beamform::ReconstructPath::kPerVoxel,
                 voxels, repeats);
    const PathResult block =
        run_path(bf, echoes, counted, beamform::ReconstructPath::kBlock,
                 voxels, repeats);
    const double speedup =
        block.seconds > 0.0 ? per_voxel.seconds / block.seconds : 0.0;
    table.add_row({c.label, format_double(per_voxel.seconds * 1e3, 2),
                   format_double(block.seconds * 1e3, 2),
                   format_double(speedup, 2) + "x",
                   format_si(block.voxels_per_second, "voxels/s", 2),
                   format_double(per_voxel.virtual_calls_per_voxel, 3),
                   format_double(block.virtual_calls_per_voxel, 5)});
    if (engines_json.tellp() > 0) engines_json << ',';
    engines_json << "{\"engine\":\"" << c.label << "\""
                 << ",\"per_voxel\":{\"seconds\":" << per_voxel.seconds
                 << ",\"voxels_per_second\":" << per_voxel.voxels_per_second
                 << ",\"virtual_calls_per_voxel\":"
                 << per_voxel.virtual_calls_per_voxel << '}'
                 << ",\"block\":{\"seconds\":" << block.seconds
                 << ",\"voxels_per_second\":" << block.voxels_per_second
                 << ",\"virtual_calls_per_voxel\":"
                 << block.virtual_calls_per_voxel << '}'
                 << ",\"speedup\":" << speedup << '}';
  }
  table.print(std::cout);
  std::cout << "\nThe block path makes ~1/block_size virtual calls per "
               "voxel instead of 1, skips\nzero-weight elements via a "
               "precomputed active list, and sweeps SoA delay rows\nwith "
               "contiguous, auto-vectorizable loops. Output is "
               "bit-identical on both paths\n(tests/beamform/"
               "test_das_kernel.cpp).\n";

  // Per-backend sweep of the explicit-SIMD DAS row kernels: the block path
  // on the production TABLEFREE engine, with BeamformOptions::simd forced
  // to each backend the host can run. Every backend's volume is
  // bit-identical (property-tested); only the wall time may differ.
  const simd::DasBackend selected = simd::resolve_backend(
      simd::DasBackend::kAuto);
  std::cout << "\nSIMD backend sweep (block path, TABLEFREE; auto selects '"
            << simd::backend_name(selected) << "'):\n\n";
  delay::TableFreeEngine simd_engine(cfg);
  // Scalar first (available_backends() lists it last) so the other rows
  // can report their speedup against the reference inline.
  std::vector<simd::DasBackend> sweep{simd::DasBackend::kScalar};
  for (const simd::DasBackend backend : simd::available_backends()) {
    if (backend != simd::DasBackend::kScalar) sweep.push_back(backend);
  }
  MarkdownTable simd_table({"backend", "block [ms]", "voxels/s", "vs scalar"});
  std::ostringstream simd_json;
  double scalar_seconds = 0.0;
  for (const simd::DasBackend backend : sweep) {
    beamform::BeamformOptions options{.path = beamform::ReconstructPath::kBlock,
                                      .simd = backend};
    bf.reconstruct(echoes, simd_engine, options);  // warm-up
    const auto t0 = Clock::now();
    for (int r = 0; r < repeats; ++r) {
      bf.reconstruct(echoes, simd_engine, options);
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count() / repeats;
    const double vps =
        seconds > 0.0 ? static_cast<double>(voxels) / seconds : 0.0;
    if (backend == simd::DasBackend::kScalar) scalar_seconds = seconds;
    const double speedup =
        seconds > 0.0 && scalar_seconds > 0.0 ? scalar_seconds / seconds : 0.0;
    simd_table.add_row({simd::backend_name(backend),
                        format_double(seconds * 1e3, 2),
                        format_si(vps, "voxels/s", 2),
                        format_double(speedup, 2) + "x"});
    if (simd_json.tellp() > 0) simd_json << ',';
    simd_json << "{\"backend\":\"" << simd::backend_name(backend)
              << "\",\"seconds\":" << seconds
              << ",\"voxels_per_second\":" << vps << ",\"speedup\":" << speedup
              << '}';
  }
  simd_table.print(std::cout);

  // Quantized block-kernel sweep: double vs int16 row kernels per backend,
  // on delay planes precomputed (and pre-quantized) outside the timed
  // region — pure kernel throughput, which is what the int16 path's
  // >= 1.5x-of-double acceptance criterion is defined over. The one-off
  // per-frame costs (echo quantization; the per-block int16 plane
  // requantization is folded into the pipeline numbers below) are
  // reported separately.
  std::cout << "\nQuantized kernel sweep (int16 row kernels vs double, "
               "TABLEFREE planes):\n\n";
  const beamform::DasKernel& kernel = bf.kernel();
  delay::TableFreeEngine plane_engine(cfg);
  plane_engine.begin_frame(Vec3{});
  const int kernel_block_points =
      beamform::Beamformer::auto_block_points(probe.element_count());
  std::vector<delay::DelayPlane> planes;
  std::vector<delay::QuantizedDelayPlane> qplanes;
  {
    delay::DelayPlane plane;
    delay::QuantizedDelayPlane qplane;
    constexpr int kMaxKernelBlocks = 64;
    imaging::for_each_focal_block(
        grid, imaging::ScanOrder::kNappeByNappe,
        imaging::full_scan_range(cfg.volume, imaging::ScanOrder::kNappeByNappe),
        kernel_block_points, [&](const imaging::FocalBlock& block) {
          if (static_cast<int>(planes.size()) >= kMaxKernelBlocks) return;
          plane_engine.compute_block(block, plane);
          qplane.quantize_from(plane, echoes.samples_per_element());
          planes.push_back(plane);
          qplanes.push_back(qplane);
        });
  }
  std::int64_t kernel_points = 0;
  for (const delay::DelayPlane& plane : planes) {
    kernel_points += plane.point_count();
  }

  beamform::QuantizedEchoBuffer qechoes;
  const auto tq0 = Clock::now();
  qechoes.quantize_from(echoes);
  const double quantize_echo_seconds =
      std::chrono::duration<double>(Clock::now() - tq0).count();

  std::vector<double> kacc(static_cast<std::size_t>(kernel_block_points));
  std::vector<std::int32_t> kqacc(
      static_cast<std::size_t>((kernel_block_points + 15) / 16 * 16));
  // Time-based batching: sweep the precomputed blocks until the budget is
  // spent, so every backend gets a comparable measurement window. The
  // measurement repeats in alternating double/quantized pairs and keeps
  // each side's best rate — on a shared host, steal time only ever makes a
  // window look slower, so max-of-reps converges on the machine's true
  // rate and the alternation keeps slow spells from biasing the ratio.
  const double kernel_budget_s = tiny ? 0.05 : 0.25;
  const int kernel_reps = 5;
  auto time_kernel = [&](auto&& sweep_once) {
    sweep_once();  // warm-up
    const auto t0 = Clock::now();
    std::int64_t swept = 0;
    double seconds = 0.0;
    do {
      sweep_once();
      swept += kernel_points;
      seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (seconds < kernel_budget_s);
    return seconds > 0.0 ? static_cast<double>(swept) / seconds : 0.0;
  };

  MarkdownTable q_table({"backend", "double voxels/s", "quantized voxels/s",
                         "quantized/double"});
  std::ostringstream q_json;
  for (const simd::DasBackend backend : sweep) {
    double double_vps = 0.0;
    double quantized_vps = 0.0;
    for (int rep = 0; rep < kernel_reps; ++rep) {
      double_vps = std::max(double_vps, time_kernel([&] {
        for (std::size_t b = 0; b < planes.size(); ++b) {
          kernel.accumulate_block(echoes, planes[b], kacc, backend);
        }
      }));
      quantized_vps = std::max(quantized_vps, time_kernel([&] {
        for (std::size_t b = 0; b < qplanes.size(); ++b) {
          kernel.accumulate_block_quantized(qechoes, qplanes[b], kqacc,
                                            backend);
        }
      }));
    }
    const double q_speedup =
        double_vps > 0.0 ? quantized_vps / double_vps : 0.0;
    q_table.add_row({simd::backend_name(backend),
                     format_si(double_vps, "voxels/s", 2),
                     format_si(quantized_vps, "voxels/s", 2),
                     format_double(q_speedup, 2) + "x"});
    if (q_json.tellp() > 0) q_json << ',';
    q_json << "{\"backend\":\"" << simd::backend_name(backend)
           << "\",\"double_voxels_per_second\":" << double_vps
           << ",\"quantized_voxels_per_second\":" << quantized_vps
           << ",\"speedup\":" << q_speedup << '}';
  }
  q_table.print(std::cout);
  std::cout << "\necho quantization (once per frame): "
            << format_double(quantize_echo_seconds * 1e3, 2) << " ms\n";

  // End-to-end: the quantized pipeline against the exact double volume on
  // the same engine/echoes, judged against the declared error bounds.
  const beamform::BeamformOptions dopts{
      .path = beamform::ReconstructPath::kBlock,
      .precision = simd::Precision::kDouble};
  const beamform::BeamformOptions qopts{
      .path = beamform::ReconstructPath::kBlock,
      .precision = simd::Precision::kQuantized};
  delay::TableFreeEngine e2e_engine(cfg);
  bf.reconstruct(echoes, e2e_engine, dopts);  // warm-up
  auto te0 = Clock::now();
  const beamform::VolumeImage double_volume =
      bf.reconstruct(echoes, e2e_engine, dopts);
  const double double_pipeline_s =
      std::chrono::duration<double>(Clock::now() - te0).count();
  bf.reconstruct(echoes, e2e_engine, qopts);  // warm-up
  te0 = Clock::now();
  const beamform::VolumeImage quantized_volume =
      bf.reconstruct(echoes, e2e_engine, qopts);
  const double quantized_pipeline_s =
      std::chrono::duration<double>(Clock::now() - te0).count();
  const acoustic::VolumeDiff diff =
      acoustic::compare_volumes(double_volume, quantized_volume);
  const double psnr_db = std::min(diff.psnr_db, 999.0);  // JSON has no inf
  const bool within_bounds = psnr_db >= beamform::kQuantMinPsnrDb;
  std::cout << "quantized pipeline: "
            << format_double(quantized_pipeline_s * 1e3, 2) << " ms vs double "
            << format_double(double_pipeline_s * 1e3, 2) << " ms; PSNR "
            << format_double(psnr_db, 1) << " dB (bound "
            << format_double(beamform::kQuantMinPsnrDb, 0) << " dB, "
            << (within_bounds ? "within" : "OUTSIDE") << " bounds)\n";

  std::ofstream json("BENCH_block.json");
  json << "{\"bench\":\"a11_block_kernel\",\"tiny\":" << (tiny ? "true" : "false")
       << ",\"probe\":\"" << cfg.probe.elements_x << 'x'
       << cfg.probe.elements_y << "\",\"volume\":\"" << cfg.volume.n_theta
       << 'x' << cfg.volume.n_phi << 'x' << cfg.volume.n_depth << "\","
       << "\"voxels\":" << voxels << ",\"repeats\":" << repeats
       << ",\"engines\":[" << engines_json.str() << ']'
       << ",\"simd_selected\":\"" << simd::backend_name(selected) << '"'
       << ",\"simd_backends\":[" << simd_json.str() << ']'
       << ",\"quantized\":{\"weight_frac_bits\":" << simd::kQuantWeightFracBits
       << ",\"kernel_backends\":[" << q_json.str() << ']'
       << ",\"quantize_echo_seconds\":" << quantize_echo_seconds
       << ",\"pipeline\":{\"double_seconds\":" << double_pipeline_s
       << ",\"quantized_seconds\":" << quantized_pipeline_s
       << ",\"speedup\":"
       << (quantized_pipeline_s > 0.0 ? double_pipeline_s / quantized_pipeline_s
                                      : 0.0)
       << '}'
       << ",\"error\":{\"max_abs_diff\":" << diff.max_abs_diff
       << ",\"rms_diff\":" << diff.rms_diff << ",\"psnr_db\":" << psnr_db
       << ",\"min_psnr_db\":" << beamform::kQuantMinPsnrDb
       << ",\"max_delay_error_samples\":"
       << beamform::kQuantMaxDelayErrorSamples
       << ",\"within_bounds\":" << (within_bounds ? "true" : "false")
       << "}}}\n";
  std::cout << "\nwrote BENCH_block.json\n";
  return 0;
}
