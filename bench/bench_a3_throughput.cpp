// A3 — Host-CPU throughput of each delay engine (google-benchmark). Not a
// paper table: contextualizes the software-beamformer option the paper
// cites ([13]) by measuring how far a CPU core is from the 2.5e12
// delays/s the system needs. The BM_Pipeline* benchmarks sweep the
// runtime::FramePipeline over 1/2/4/8 worker threads: the whole-frame
// beamform (delay generation + delay-and-sum) should scale near-linearly
// until the core count runs out.
#include <benchmark/benchmark.h>

#include <vector>

#include "beamform/echo_buffer.h"
#include "delay/exact.h"
#include "delay/full_table.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/scan_order.h"
#include "imaging/system_config.h"
#include "probe/apodization.h"
#include "runtime/frame_pipeline.h"

namespace {

using namespace us3d;

const imaging::SystemConfig& bench_config() {
  static const imaging::SystemConfig cfg = imaging::scaled_system(16, 16, 60);
  return cfg;
}

/// Sweeps the whole scaled volume once per iteration; reports delays/s.
template <typename Engine>
void run_engine_sweep(benchmark::State& state, Engine& engine) {
  const auto& cfg = bench_config();
  const imaging::VolumeGrid grid(cfg.volume);
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(engine.element_count()));
  for (auto _ : state) {
    engine.begin_frame(Vec3{});
    imaging::for_each_focal_point(
        grid, imaging::ScanOrder::kNappeByNappe,
        [&](const imaging::FocalPoint& fp) {
          engine.compute(fp, out);
          benchmark::DoNotOptimize(out.data());
        });
  }
  state.SetItemsProcessed(state.iterations() * cfg.delays_per_frame());
}

void BM_ExactEngine(benchmark::State& state) {
  delay::ExactDelayEngine engine(bench_config());
  run_engine_sweep(state, engine);
}
BENCHMARK(BM_ExactEngine)->Unit(benchmark::kMillisecond);

void BM_TableFreeEngine(benchmark::State& state) {
  delay::TableFreeEngine engine(bench_config());
  run_engine_sweep(state, engine);
}
BENCHMARK(BM_TableFreeEngine)->Unit(benchmark::kMillisecond);

void BM_TableFreeDoubleMode(benchmark::State& state) {
  delay::TableFreeConfig tf;
  tf.use_fixed_point = false;
  delay::TableFreeEngine engine(bench_config(), tf);
  run_engine_sweep(state, engine);
}
BENCHMARK(BM_TableFreeDoubleMode)->Unit(benchmark::kMillisecond);

void BM_TableSteer18(benchmark::State& state) {
  delay::TableSteerEngine engine(bench_config(),
                                 delay::TableSteerConfig::bits18());
  run_engine_sweep(state, engine);
}
BENCHMARK(BM_TableSteer18)->Unit(benchmark::kMillisecond);

void BM_TableSteer14(benchmark::State& state) {
  delay::TableSteerEngine engine(bench_config(),
                                 delay::TableSteerConfig::bits14());
  run_engine_sweep(state, engine);
}
BENCHMARK(BM_TableSteer14)->Unit(benchmark::kMillisecond);

void BM_FullTableLookup(benchmark::State& state) {
  delay::FullTableEngine engine(bench_config());
  run_engine_sweep(state, engine);
}
BENCHMARK(BM_FullTableLookup)->Unit(benchmark::kMillisecond);

// Thread-count sweep of the parallel frame pipeline: one full-frame
// reconstruction per iteration, 1/2/4/8 workers. Items processed counts
// delay coefficients, so the delays/s column is directly comparable with
// the single-engine sweeps above.
template <typename Engine>
void run_pipeline_sweep(benchmark::State& state, const Engine& prototype) {
  const auto& cfg = bench_config();
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kRect);
  runtime::FramePipeline pipeline(
      cfg, apod, prototype,
      runtime::PipelineConfig{
          .worker_threads = static_cast<int>(state.range(0))});
  beamform::EchoBuffer echoes(prototype.element_count(),
                              cfg.echo_buffer_samples());
  for (auto _ : state) {
    auto volume = pipeline.reconstruct_frame(echoes, Vec3{});
    benchmark::DoNotOptimize(volume.voxel_count());
  }
  state.SetItemsProcessed(state.iterations() * cfg.delays_per_frame());
}

void BM_PipelineTableFree(benchmark::State& state) {
  delay::TableFreeEngine prototype(bench_config());
  run_pipeline_sweep(state, prototype);
}
BENCHMARK(BM_PipelineTableFree)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelineTableSteer18(benchmark::State& state) {
  delay::TableSteerEngine prototype(bench_config(),
                                    delay::TableSteerConfig::bits18());
  run_pipeline_sweep(state, prototype);
}
BENCHMARK(BM_PipelineTableSteer18)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelineExact(benchmark::State& state) {
  delay::ExactDelayEngine prototype(bench_config());
  run_pipeline_sweep(state, prototype);
}
BENCHMARK(BM_PipelineExact)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Microbenchmark: the PWL sqrt evaluation itself vs std::sqrt.
void BM_PwlSqrtEvaluate(benchmark::State& state) {
  const delay::PwlSqrt pwl = delay::PwlSqrt::build(16.0, 2.0e7, 0.25);
  double x = 17.0;
  for (auto _ : state) {
    x = x * 1.0001;
    if (x > 1.9e7) x = 17.0;
    benchmark::DoNotOptimize(pwl.evaluate(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PwlSqrtEvaluate);

void BM_StdSqrt(benchmark::State& state) {
  double x = 17.0;
  for (auto _ : state) {
    x = x * 1.0001;
    if (x > 1.9e7) x = 17.0;
    benchmark::DoNotOptimize(std::sqrt(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdSqrt);

}  // namespace
