// E8 — Sec. VI-A fixed-point storage Monte-Carlo (the paper's "Matlab
// simulation on 10e6 random input values"): fraction of echo-sample
// selections changed by quantized storage of the reference delay and the
// two steering corrections. Paper: 33% at 13-bit integer, <2% at 18-bit.
#include <iostream>

#include "bench_util.h"
#include "delay/quantization.h"

int main() {
  using namespace us3d;
  bench::banner("E8", "Fixed-point storage Monte-Carlo (Sec. VI-A)");

  struct DesignPoint {
    const char* name;
    fx::Format ref;
    fx::Format corr;
    fx::Format sum;
  };
  const DesignPoint points[] = {
      {"13-bit integer", fx::Format{13, 0, false}, fx::Format{13, 0, true},
       fx::Format{14, 0, true}},
      {"14-bit (uQ13.1 + sQ13.0)", fx::kRefDelay14, fx::kCorrection14,
       fx::Format{14, 1, true}},
      {"16-bit (uQ13.3 + sQ13.2)", fx::Format{13, 3, false},
       fx::Format{13, 2, true}, fx::Format{14, 3, true}},
      {"18-bit (uQ13.5 + sQ13.4)", fx::kRefDelay18, fx::kCorrection18,
       fx::Format{14, 5, true}},
      {"20-bit (uQ13.7 + sQ13.6)", fx::Format{13, 7, false},
       fx::Format{13, 6, true}, fx::Format{14, 7, true}},
  };

  MarkdownTable t({"Storage format", "Selections changed", "Max index diff"});
  for (const DesignPoint& p : points) {
    delay::QuantizationExperimentConfig cfg;
    cfg.ref_format = p.ref;
    cfg.corr_format = p.corr;
    cfg.sum_format = p.sum;
    cfg.trials = 10'000'000;  // the paper's trial count
    const auto r = delay::run_quantization_experiment(cfg);
    t.add_row({p.name, format_percent(r.fraction_changed(), 2),
               std::to_string(r.max_abs_index_diff)});
  }
  t.print(std::cout);

  bench::PaperComparison cmp;
  cmp.row("13-bit integers", "33% of samples off by 1", "see row 1")
      .row("18-bit (13.5)", "< 2%", "see row 4")
      .row("Max difference", "+/-1 sample", "see last column");
  cmp.print();

  std::cout << "\nThe 33% has a closed form: with three independently "
               "rounded integer terms the\nflip probability is the "
               "Irwin-Hall P(|U1+U2+U3| > 1/2) = 1/3.\n";
  return 0;
}
