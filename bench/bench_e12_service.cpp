// E12 — the multi-session imaging service under load: a per-policy x
// per-session-count sweep over one shared worker/in-flight budget, with
// one deliberately overloaded session per cell so the shed policies have
// something to do. Also quantifies the satellite win of sharing the
// immutable reference tables across engine clones (the paper's headline
// memory cost no longer multiplies by worker count).
//
// Emits BENCH_service.json; `--tiny` is the CI smoke mode. Contract keys
// (validated red/green by CI): "policy_sweep" (one row per policy x
// session count, each with "policy"/"sessions"/"stats"), "scenarios",
// "budget", "shared_table_savings".
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "bench_util.h"
#include "common/prng.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablesteer.h"
#include "service/imaging_service.h"

namespace {

using namespace us3d;
using runtime::EchoFrame;
using service::Admission;
using service::EngineFamily;
using service::ImagingService;
using service::Scenario;
using service::ScenarioCatalog;
using service::ServiceBudget;
using service::ServiceStats;
using service::SessionOptions;
using service::SessionStats;
using service::ShedPolicy;

/// The bench's scenario roster: the builtin catalog resized so every cell
/// finishes quickly (tiny) or at a workload where beamforming dominates
/// scheduling (full). Engine variety is the point — a cell with N
/// sessions runs N *different* scenarios.
std::vector<Scenario> roster(bool tiny) {
  std::vector<Scenario> out;
  const ScenarioCatalog catalog = ScenarioCatalog::builtin();
  for (const Scenario& builtin : catalog.scenarios()) {
    Scenario s = builtin;
    if (tiny) {
      s.probe_elements = 5;
      s.n_lines = 6;
      s.n_depth = 12;
    } else {
      s.probe_elements = 8;
      s.n_lines = 10;
      s.n_depth = 32;
    }
    // The sweep drives sessions itself; wall-clock pacing would make the
    // cells take acquisition time rather than compute time.
    s.pacing = runtime::IngestPacing::kReportOnly;
    // Keep compounding exercised but short in tiny mode.
    if (tiny && s.compound_origins > 1) s.compound_origins = 2;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<EchoFrame> make_frames(const Scenario& scenario, int n,
                                   std::uint64_t seed) {
  const imaging::SystemConfig cfg = scenario.system();
  const imaging::VolumeGrid grid(cfg.volume);
  SplitMix64 rng(seed);
  const std::vector<Vec3> origins = scenario.origins(n);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < n; ++i) {
    acoustic::Phantom phantom;
    for (int k = 0; k < 2; ++k) {
      const int it = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_theta)));
      const int ip = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_phi)));
      const int id = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(cfg.volume.n_depth)));
      phantom.push_back(acoustic::PointScatterer{
          grid.focal_point(it, ip, id).position, rng.next_in(0.5, 1.5)});
    }
    acoustic::SynthesisOptions synth;
    synth.origin = origins[static_cast<std::size_t>(i)];
    frames.push_back(EchoFrame{acoustic::synthesize_echoes(cfg, phantom, synth),
                               origins[static_cast<std::size_t>(i)], i});
  }
  return frames;
}

/// One sweep cell: N concurrent sessions under `policy`, session 0
/// overloaded (a 3x unpolled burst), the rest paced on acceptance.
ServiceStats run_cell(const std::vector<Scenario>& scenarios, int sessions,
                      ShedPolicy policy, int frames_per_session) {
  // Every admitted session is guaranteed one worker, so the budget must
  // cover the session count — beyond 4 the pool stays oversubscribed
  // (sessions want 2 workers each) and contention is what the cell
  // measures.
  ImagingService svc(ServiceBudget{.worker_threads = std::max(4, sessions),
                                   .inflight_volumes = 2 * sessions});
  std::vector<int> ids;
  std::vector<Scenario> used;
  for (int i = 0; i < sessions; ++i) {
    Scenario s = scenarios[static_cast<std::size_t>(i) % scenarios.size()];
    s.name.append("#").append(std::to_string(i));
    const SessionOptions options{
        .priority = i == 0 ? service::PriorityClass::kInteractive
                           : service::PriorityClass::kRoutine,
        .policy = policy};
    const Admission adm = svc.open_session(s, options);
    if (!adm.admitted) {
      std::cerr << "admission refused: " << adm.reason << "\n";
      std::exit(1);
    }
    ids.push_back(adm.session);
    used.push_back(std::move(s));
  }

  const runtime::VolumeSink devnull = [](const beamform::VolumeImage&,
                                         std::int64_t) {};
  // Session 0: overload burst, no polling — the shed policy earns its
  // keep here. Everyone else: paced on pipeline acceptance.
  {
    auto frames =
        make_frames(used[0], 3 * frames_per_session,
                    0xE12 + static_cast<std::uint64_t>(sessions));
    for (EchoFrame& f : frames) svc.submit(ids[0], std::move(f));
  }
  for (int i = 1; i < sessions; ++i) {
    const int id = ids[static_cast<std::size_t>(i)];
    auto frames = make_frames(used[static_cast<std::size_t>(i)],
                              frames_per_session,
                              0xBEEF + static_cast<std::uint64_t>(i));
    std::int64_t sent = 0;
    for (EchoFrame& f : frames) {
      // Fail fast instead of pacing on a frame that was never accepted —
      // a refused submit would otherwise turn the acceptance wait below
      // into an infinite spin and hang bench-smoke until the CI timeout.
      if (!svc.submit(id, std::move(f))) {
        std::cerr << "polite session " << id << " refused a frame: "
                  << svc.session_stats(id).error << "\n";
        std::exit(1);
      }
      ++sent;
      while (svc.session_stats(id).accepted < sent) {
        if (svc.session_failed(id)) {
          std::cerr << "session " << id << " failed mid-stream: "
                    << svc.session_stats(id).error << "\n";
          std::exit(1);
        }
        svc.poll(id, devnull);
      }
    }
  }
  for (const int id : ids) svc.close_session(id, devnull);
  return svc.stats();
}

std::string policy_sweep(bool tiny, const std::vector<Scenario>& scenarios) {
  bench::section("multi-session sweep: policy x concurrent sessions "
                 "(shared budget: max(4, sessions) workers)");
  const std::vector<int> session_counts =
      tiny ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 6};
  const int frames_per_session = tiny ? 4 : 8;

  MarkdownTable table({"policy", "sessions", "submitted", "delivered",
                       "shed (refuse/drop/adapt)", "dropped",
                       "p99 latency [ms]", "worker budget"});
  std::ostringstream rows;
  for (const ShedPolicy policy :
       {ShedPolicy::kRefuseNewest, ShedPolicy::kDropOldest,
        ShedPolicy::kAdaptiveDepth}) {
    for (const int sessions : session_counts) {
      const ServiceStats stats =
          run_cell(scenarios, sessions, policy, frames_per_session);
      double p99 = 0.0;
      for (const auto& q : stats.latency_by_class) {
        p99 = std::max(p99, q.p99());
      }
      table.add_row(
          {service::policy_name(policy), std::to_string(sessions),
           std::to_string(stats.submitted),
           std::to_string(stats.delivered_frames),
           std::to_string(stats.shed_refused) + "/" +
               std::to_string(stats.shed_dropped) + "/" +
               std::to_string(stats.shed_adaptive),
           std::to_string(stats.dropped_frames),
           format_double(p99 * 1e3, 2),
           std::to_string(stats.budget_workers)});
      if (rows.tellp() > 0) rows << ',';
      // budget_workers repeats the cell's ACTUAL budget (max(4, sessions))
      // at the row level so trajectory tooling never has to guess it from
      // the nested stats.
      rows << "{\"policy\":\"" << service::policy_name(policy)
           << "\",\"sessions\":" << sessions
           << ",\"frames_per_session\":" << frames_per_session
           << ",\"budget_workers\":" << stats.budget_workers
           << ",\"stats\":" << stats.to_json() << '}';
    }
  }
  table.print(std::cout);
  std::cout << "\nEvery cell overloads session 0 with a 3x unpolled burst; "
               "polite sessions pace on\nacceptance. kAdaptiveDepth sheds on "
               "the overloaded session only — survivors stay\nbit-identical "
               "to serial reconstruction (tests/service/ pins this for all "
               "five\nengine families).\n";
  return rows.str();
}

/// Satellite measurement: the per-clone memory no longer spent since
/// TableSteerEngine / SyntheticApertureSteerEngine clones share their
/// immutable reference tables (shared_ptr<const>) instead of deep-copying.
std::string shared_table_savings(const std::vector<Scenario>& scenarios) {
  bench::section("shared reference tables: per-clone memory saving");
  const Scenario* steer = nullptr;
  const Scenario* sa = nullptr;
  for (const Scenario& s : scenarios) {
    if (s.engine == EngineFamily::kTableSteer && !steer) steer = &s;
    if (s.engine == EngineFamily::kTableSteerSA && !sa) sa = &s;
  }
  const imaging::SystemConfig steer_cfg = steer->system();
  const delay::TableSteerEngine steer_engine(steer_cfg);
  const double steer_bytes = steer_engine.reference_table().storage_bits() / 8.0;

  const delay::SyntheticApertureSteerEngine sa_engine(sa->system(),
                                                      sa->sa_plan());
  const double sa_bytes = sa_engine.repository().total_storage_bits() / 8.0;

  // Workers clone the prototype once per slab; before the shared_ptr
  // refactor every clone deep-copied its table (repository).
  const int clones = steer->worker_threads;
  const double steer_saved = steer_bytes * (clones - 1);
  const double sa_saved = sa_bytes * (sa->worker_threads - 1);

  // The headline number: the same table at the paper's full scale (100x100
  // probe, 1000 depths), which every worker clone used to deep-copy.
  const delay::ReferenceDelayTable paper_table(imaging::paper_system());
  const double paper_bytes = paper_table.storage_bits() / 8.0;
  constexpr int kPaperWorkers = 8;
  const double paper_saved = paper_bytes * (kPaperWorkers - 1);

  MarkdownTable t({"engine", "table bytes", "worker clones",
                   "bytes saved per session"});
  t.add_row({steer_engine.name(), format_bytes(steer_bytes),
             std::to_string(clones), format_bytes(steer_saved)});
  t.add_row({sa_engine.name() + std::string(" (") +
                 std::to_string(sa->sa_origins) + " origins)",
             format_bytes(sa_bytes), std::to_string(sa->worker_threads),
             format_bytes(sa_saved)});
  t.add_row({"TABLESTEER @ paper scale", format_bytes(paper_bytes),
             std::to_string(kPaperWorkers), format_bytes(paper_saved)});
  t.print(std::cout);
  std::cout << "\nAt the paper's full scale one TABLESTEER quadrant table is "
               "~5.6 MB and an SA\nrepository is one table per origin — the "
               "saving scales with workers x origins x\nsessions, which is "
               "exactly the multiplier a multi-session box cannot afford.\n";

  std::ostringstream os;
  os << "{\"engine\":\"" << steer_engine.name()
     << "\",\"table_bytes\":" << steer_bytes
     << ",\"clones_per_session\":" << clones
     << ",\"bytes_saved_per_session\":" << steer_saved
     << ",\"sa_engine\":\"" << sa_engine.name()
     << "\",\"sa_repository_bytes\":" << sa_bytes
     << ",\"sa_bytes_saved_per_session\":" << sa_saved
     << ",\"paper_table_bytes\":" << paper_bytes
     << ",\"paper_workers\":" << kPaperWorkers
     << ",\"paper_bytes_saved_per_session\":" << paper_saved << '}';
  return os.str();
}

void write_bench_json(bool tiny, const std::vector<Scenario>& scenarios,
                      const std::string& sweep_rows,
                      const std::string& savings) {
  std::ofstream json("BENCH_service.json");
  // Per-cell budgets vary with the session count (max(4, sessions)
  // workers, 2 in-flight slots per session); each policy_sweep row
  // carries its exact numbers in budget_workers / stats.budget.
  json << "{\"bench\":\"e12_service\",\"tiny\":" << (tiny ? "true" : "false")
       << ",\"budget\":{\"worker_threads\":\"max(4, sessions)\","
          "\"inflight_volumes\":\"2 per session\"},\"scenarios\":[";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (i) json << ',';
    json << scenarios[i].to_json();
  }
  json << "],\"policy_sweep\":[" << sweep_rows
       << "],\"shared_table_savings\":" << savings << "}\n";
  std::cout << "\nwrote BENCH_service.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";
  bench::banner("E12", "multi-session imaging service (shared budget, "
                       "admission control, load shedding)");

  const std::vector<Scenario> scenarios = roster(tiny);
  std::cout << "scenario roster (" << scenarios.size() << "):";
  for (const Scenario& s : scenarios) std::cout << ' ' << s.name;
  std::cout << "\n";

  const std::string rows = policy_sweep(tiny, scenarios);
  const std::string savings = shared_table_savings(scenarios);
  write_bench_json(tiny, scenarios, rows, savings);
  return 0;
}
