// A4 — Image-level validation of the paper's accuracy argument: beamform a
// point-scatterer phantom with each delay architecture and compare PSF
// geometry, peak placement and volume NRMSE against exact delays. The
// paper claims image quality is preserved so long as delays are equally
// accurate (Sec. II-A) and TABLESTEER's worst errors are apodized away
// (Sec. VI-A).
#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/metrics.h"
#include "beamform/beamformer.h"
#include "bench_util.h"
#include "delay/exact.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"

int main() {
  using namespace us3d;
  bench::banner("A4", "Image quality with approximate delay generation");

  const auto cfg = imaging::scaled_system(16, 17, 80);
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom = {
      {grid.focal_point(8, 8, 40).position, 1.0},   // centre
      {grid.focal_point(3, 13, 64).position, 0.7},  // steered, deep
  };
  const auto echoes = acoustic::synthesize_echoes(cfg, phantom);
  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const beamform::Beamformer bf(cfg, apod);

  delay::ExactDelayEngine exact(cfg);
  const beamform::VolumeImage ref = bf.reconstruct(echoes, exact);
  const acoustic::PsfMetrics ref_psf = acoustic::measure_psf(ref);

  MarkdownTable t({"Engine", "peak offset [steps]", "-6dB width theta",
                   "-6dB width phi", "-6dB width depth", "peak amplitude",
                   "NRMSE vs exact"});
  auto report = [&](delay::DelayEngine& engine) {
    const beamform::VolumeImage img = bf.reconstruct(echoes, engine);
    const acoustic::PsfMetrics psf = acoustic::measure_psf(img);
    t.add_row({engine.name(),
               format_double(acoustic::peak_offset_steps(
                                 psf, ref_psf.peak.i_theta,
                                 ref_psf.peak.i_phi, ref_psf.peak.i_depth),
                             1),
               format_double(psf.width_theta, 2),
               format_double(psf.width_phi, 2),
               format_double(psf.width_depth, 2),
               format_double(std::abs(psf.peak.value), 4),
               engine.name() == "EXACT"
                   ? std::string("0")
                   : format_double(beamform::VolumeImage::nrmse(ref, img),
                                   4)});
  };

  report(exact);
  delay::TableFreeEngine tablefree(cfg);
  report(tablefree);
  delay::TableSteerEngine ts18(cfg, delay::TableSteerConfig::bits18());
  report(ts18);
  delay::TableSteerEngine ts14(cfg, delay::TableSteerConfig::bits14());
  report(ts14);
  // The degenerate 13-bit-integer storage of Sec. VI-A (33% of selections
  // off by one): visible as extra NRMSE, still not structurally wrong.
  delay::TableSteerEngine ts13(cfg, delay::TableSteerConfig::bits13());
  report(ts13);
  t.print(std::cout);

  std::cout << "\nAll architectures place the point scatterer on the same "
               "voxel with matching\nmain-lobe widths; the approximate "
               "engines trade a few percent of coherent peak\namplitude "
               "and a small NRMSE, consistent with the paper's accuracy "
               "analysis.\n";
  return 0;
}
