// OBS — telemetry overhead on the e10 streaming workload: the same
// TABLEFREE FramePipeline sweep bench_e10 times, run back to back with
// the observability layers runtime-enabled and runtime-disabled, so
// BENCH_obs.json pins what turning them on costs. Two gated cells:
// tracing alone, and the full stack (trace + event log + resource
// profiler) — each must stay <= 5% on --tiny. Micro-cells price one
// event emit and one profiler sampling pass. In a US3D_TRACING=OFF
// build the span sites are compiled out entirely and both trace modes
// measure the same code — `tracing_compiled` in the JSON says which
// claim a given trajectory point makes.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "bench_util.h"
#include "common/json_writer.h"
#include "common/latency.h"
#include "delay/tablefree.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/resource_profiler.h"
#include "obs/trace.h"
#include "runtime/frame_pipeline.h"

namespace {

us3d::imaging::SystemConfig workload_system(bool tiny) {
  // Mirrors bench_e10's sweep_system so the overhead number is measured
  // on the workload the acceptance criterion names.
  return tiny ? us3d::imaging::scaled_system(8, 12, 48)
              : us3d::imaging::scaled_system(12, 24, 120);
}

std::vector<us3d::runtime::EchoFrame> workload_frames(
    const us3d::imaging::SystemConfig& cfg, int count) {
  using namespace us3d;
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{acoustic::PointScatterer{
      grid.focal_point(cfg.volume.n_theta / 2, cfg.volume.n_phi / 2,
                       cfg.volume.n_depth / 2)
          .position,
      1.0}};
  return std::vector<runtime::EchoFrame>(
      static_cast<std::size_t>(count),
      runtime::EchoFrame{acoustic::synthesize_echoes(cfg, phantom), Vec3{},
                         0});
}

/// One streaming pass; returns wall seconds.
double run_once(const us3d::imaging::SystemConfig& cfg,
                const us3d::probe::ApodizationMap& apod,
                const std::vector<us3d::runtime::EchoFrame>& frames,
                int repeats) {
  using namespace us3d;
  delay::TableFreeEngine prototype(cfg);
  runtime::FramePipeline pipeline(
      cfg, apod, prototype,
      runtime::PipelineConfig{.worker_threads = 2, .queue_depth = 2});
  runtime::ReplayFrameSource source(frames, repeats);
  const auto t0 = std::chrono::steady_clock::now();
  pipeline.run(source, [](const beamform::VolumeImage&, std::int64_t) {});
  return seconds_since(t0);
}

/// Best-of-N wall time with tracing and the event log forced on/off.
/// Minimum, not mean: scheduler noise only ever adds time, so
/// min-of-reps is the stable estimator for an overhead ratio on a
/// shared CI box.
double best_wall(bool tracing, bool events, int reps,
                 const us3d::imaging::SystemConfig& cfg,
                 const us3d::probe::ApodizationMap& apod,
                 const std::vector<us3d::runtime::EchoFrame>& frames,
                 int repeats) {
  using us3d::obs::EventLog;
  using us3d::obs::TraceCollector;
  TraceCollector::instance().set_enabled(tracing);
  EventLog::instance().set_enabled(events);
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    // Reset per rep so the enabled runs keep recording into warm buffers
    // without ever paying a drop-path difference between reps.
    TraceCollector::instance().reset();
    EventLog::instance().reset();
    const double wall = run_once(cfg, apod, frames, repeats);
    best = i == 0 ? wall : std::min(best, wall);
  }
  return best;
}

/// Nanoseconds per emit_event() call with the log enabled (the price an
/// admission/shed site pays when US3D_EVENTS is on).
double event_emit_cost_ns(int iterations) {
  using namespace us3d::obs;
  EventLog::instance().set_enabled(true);
  EventLog::instance().reset();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    US3D_EVENT_DEBUG("bench.emit", i, i, "micro", "arg", i, "neg", -i);
  }
  const double wall = us3d::seconds_since(t0);
  EventLog::instance().set_enabled(false);
  return wall * 1e9 / iterations;
}

/// Microseconds per ResourceProfiler::sample_once() pass (what the
/// sampler thread pays per period: per-thread CPU clocks + /proc RSS +
/// gauge publication).
double profiler_sample_cost_us(us3d::obs::MetricsRegistry& registry,
                               int iterations) {
  using namespace us3d::obs;
  ResourceProfiler::global().register_current_thread("bench");
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    ResourceProfiler::global().sample_once(registry);
  }
  return us3d::seconds_since(t0) * 1e6 / iterations;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace us3d;
  const bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";
  bench::banner("OBS",
                "telemetry overhead: tracing, events, profiler + metrics");

  const imaging::SystemConfig cfg = workload_system(tiny);
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kRect);
  const auto frames = workload_frames(cfg, 2);
  const int repeats = tiny ? 2 : 4;
  const int reps = tiny ? 3 : 5;

  // Warm up caches and thread pools outside the timed modes.
  obs::TraceCollector::instance().set_enabled(false);
  obs::EventLog::instance().set_enabled(false);
  run_once(cfg, apod, frames, 1);

  const double disabled_s =
      best_wall(false, false, reps, cfg, apod, frames, repeats);
  const double enabled_s =
      best_wall(true, false, reps, cfg, apod, frames, repeats);
  const obs::TraceSnapshot snap = obs::TraceCollector::instance().collect();

  // The full stack: spans + events + the resource profiler sampling the
  // stage threads while they stream.
  obs::ResourceProfiler::global().start(obs::MetricsRegistry::global(),
                                        std::chrono::milliseconds(50));
  const double combined_s =
      best_wall(true, true, reps, cfg, apod, frames, repeats);
  const obs::EventSnapshot events = obs::EventLog::instance().collect();
  obs::ResourceProfiler::global().stop();
  obs::TraceCollector::instance().set_enabled(false);
  obs::EventLog::instance().set_enabled(false);

  const double overhead_percent =
      disabled_s > 0.0 ? (enabled_s / disabled_s - 1.0) * 1e2 : 0.0;
  const double combined_overhead_percent =
      disabled_s > 0.0 ? (combined_s / disabled_s - 1.0) * 1e2 : 0.0;

  bench::section("telemetry overhead (best of " + std::to_string(reps) +
                 " streaming passes)");
  MarkdownTable table({"mode", "wall [ms]", "spans", "events"});
  table.add_row({obs::TraceCollector::compiled_in() ? "all-disabled"
                                                    : "compiled-out",
                 format_double(disabled_s * 1e3, 2), "0", "0"});
  table.add_row({obs::TraceCollector::compiled_in() ? "tracing"
                                                    : "compiled-out",
                 format_double(enabled_s * 1e3, 2),
                 std::to_string(snap.total_spans()), "0"});
  table.add_row({"trace+events+profiler", format_double(combined_s * 1e3, 2),
                 std::to_string(snap.total_spans()),
                 std::to_string(events.events.size())});
  table.print(std::cout);
  std::cout << "\ntracing overhead: " << format_double(overhead_percent, 2)
            << "%, full stack: "
            << format_double(combined_overhead_percent, 2) << "% (span sites "
            << (obs::TraceCollector::compiled_in() ? "compiled in"
                                                   : "compiled out")
            << ")\n";

  // Micro-costs of the new layers, so a regression shows up as a number
  // even when the end-to-end ratio hides in scheduler noise.
  const double emit_ns = event_emit_cost_ns(tiny ? 200000 : 1000000);
  const double sample_us =
      profiler_sample_cost_us(obs::MetricsRegistry::global(),
                              tiny ? 200 : 1000);
  bench::section("micro-costs");
  std::cout << "event emit: " << format_double(emit_ns, 1)
            << " ns, profiler sample_once: " << format_double(sample_us, 1)
            << " us\n";

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("bench", "obs_tracing_overhead")
      .kv("tiny", tiny)
      .kv("tracing_compiled", obs::TraceCollector::compiled_in())
      .kv("reps", reps)
      .kv("stream_repeats", repeats)
      .kv("disabled_wall_s", disabled_s)
      .kv("enabled_wall_s", enabled_s)
      .kv("overhead_percent", overhead_percent)
      .kv("combined_wall_s", combined_s)
      .kv("combined_overhead_percent", combined_overhead_percent)
      .kv("event_emit_ns", emit_ns)
      .kv("profiler_sample_us", sample_us)
      .kv("events_recorded", static_cast<std::int64_t>(events.events.size()))
      .kv("events_dropped", static_cast<std::int64_t>(events.dropped))
      .kv("spans_recorded", snap.total_spans())
      .kv("spans_dropped", snap.total_dropped())
      .kv_raw("metrics", obs::MetricsRegistry::global().snapshot_json())
      .end_object();
  std::ofstream json("BENCH_obs.json");
  json << os.str() << '\n';
  std::cout << "\nwrote BENCH_obs.json\n";
  return 0;
}
