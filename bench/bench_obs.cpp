// OBS — tracing overhead on the e10 streaming workload: the same
// TABLEFREE FramePipeline sweep bench_e10 times, run back to back with
// tracing runtime-enabled and runtime-disabled, so BENCH_obs.json pins
// what turning the span sites on costs (acceptance: <= 5% on --tiny).
// In a US3D_TRACING=OFF build the sites are compiled out entirely and
// both modes measure the same code — `tracing_compiled` in the JSON says
// which claim a given trajectory point makes.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "bench_util.h"
#include "common/json_writer.h"
#include "common/latency.h"
#include "delay/tablefree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/frame_pipeline.h"

namespace {

us3d::imaging::SystemConfig workload_system(bool tiny) {
  // Mirrors bench_e10's sweep_system so the overhead number is measured
  // on the workload the acceptance criterion names.
  return tiny ? us3d::imaging::scaled_system(8, 12, 48)
              : us3d::imaging::scaled_system(12, 24, 120);
}

std::vector<us3d::runtime::EchoFrame> workload_frames(
    const us3d::imaging::SystemConfig& cfg, int count) {
  using namespace us3d;
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{acoustic::PointScatterer{
      grid.focal_point(cfg.volume.n_theta / 2, cfg.volume.n_phi / 2,
                       cfg.volume.n_depth / 2)
          .position,
      1.0}};
  return std::vector<runtime::EchoFrame>(
      static_cast<std::size_t>(count),
      runtime::EchoFrame{acoustic::synthesize_echoes(cfg, phantom), Vec3{},
                         0});
}

/// One streaming pass; returns wall seconds.
double run_once(const us3d::imaging::SystemConfig& cfg,
                const us3d::probe::ApodizationMap& apod,
                const std::vector<us3d::runtime::EchoFrame>& frames,
                int repeats) {
  using namespace us3d;
  delay::TableFreeEngine prototype(cfg);
  runtime::FramePipeline pipeline(
      cfg, apod, prototype,
      runtime::PipelineConfig{.worker_threads = 2, .queue_depth = 2});
  runtime::ReplayFrameSource source(frames, repeats);
  const auto t0 = std::chrono::steady_clock::now();
  pipeline.run(source, [](const beamform::VolumeImage&, std::int64_t) {});
  return seconds_since(t0);
}

/// Best-of-N wall time with tracing forced to `enabled`. Minimum, not
/// mean: scheduler noise only ever adds time, so min-of-reps is the
/// stable estimator for an overhead ratio on a shared CI box.
double best_wall(bool enabled, int reps,
                 const us3d::imaging::SystemConfig& cfg,
                 const us3d::probe::ApodizationMap& apod,
                 const std::vector<us3d::runtime::EchoFrame>& frames,
                 int repeats) {
  using us3d::obs::TraceCollector;
  TraceCollector::instance().set_enabled(enabled);
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    // Reset per rep so the enabled runs keep recording into warm buffers
    // without ever paying a drop-path difference between reps.
    TraceCollector::instance().reset();
    const double wall = run_once(cfg, apod, frames, repeats);
    best = i == 0 ? wall : std::min(best, wall);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace us3d;
  const bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";
  bench::banner("OBS", "pipeline tracing overhead + live metrics snapshot");

  const imaging::SystemConfig cfg = workload_system(tiny);
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kRect);
  const auto frames = workload_frames(cfg, 2);
  const int repeats = tiny ? 2 : 4;
  const int reps = tiny ? 3 : 5;

  // Warm up caches and thread pools outside both timed modes.
  obs::TraceCollector::instance().set_enabled(false);
  run_once(cfg, apod, frames, 1);

  const double disabled_s =
      best_wall(false, reps, cfg, apod, frames, repeats);
  const double enabled_s = best_wall(true, reps, cfg, apod, frames, repeats);
  const obs::TraceSnapshot snap = obs::TraceCollector::instance().collect();
  obs::TraceCollector::instance().set_enabled(false);

  const double overhead_percent =
      disabled_s > 0.0 ? (enabled_s / disabled_s - 1.0) * 1e2 : 0.0;

  bench::section("tracing overhead (best of " + std::to_string(reps) +
                 " streaming passes)");
  MarkdownTable table({"mode", "wall [ms]", "spans", "dropped"});
  table.add_row({obs::TraceCollector::compiled_in() ? "runtime-disabled"
                                                    : "compiled-out",
                 format_double(disabled_s * 1e3, 2), "0", "0"});
  table.add_row({obs::TraceCollector::compiled_in() ? "runtime-enabled"
                                                    : "compiled-out",
                 format_double(enabled_s * 1e3, 2),
                 std::to_string(snap.total_spans()),
                 std::to_string(snap.total_dropped())});
  table.print(std::cout);
  std::cout << "\noverhead: " << format_double(overhead_percent, 2)
            << "% (span sites "
            << (obs::TraceCollector::compiled_in() ? "compiled in"
                                                   : "compiled out")
            << ")\n";

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .kv("bench", "obs_tracing_overhead")
      .kv("tiny", tiny)
      .kv("tracing_compiled", obs::TraceCollector::compiled_in())
      .kv("reps", reps)
      .kv("stream_repeats", repeats)
      .kv("disabled_wall_s", disabled_s)
      .kv("enabled_wall_s", enabled_s)
      .kv("overhead_percent", overhead_percent)
      .kv("spans_recorded", snap.total_spans())
      .kv("spans_dropped", snap.total_dropped())
      .kv_raw("metrics", obs::MetricsRegistry::global().snapshot_json())
      .end_object();
  std::ofstream json("BENCH_obs.json");
  json << os.str() << '\n';
  std::cout << "\nwrote BENCH_obs.json\n";
  return 0;
}
