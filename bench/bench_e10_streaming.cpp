// E10 — Sec. V-B streaming claims: the delay fabric's throughput
// (3.3 Tdelays/s at 200 MHz), the 960 fetches/s DRAM stream at 4.1-5.3
// GB/s, and the circular-buffer latency margin ("an ample margin of 1k
// cycles"), checked with a cycle-level producer/consumer simulation
// including DRAM blackout injection.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "bench_util.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "hw/delay_fabric.h"
#include "runtime/frame_pipeline.h"

namespace {

us3d::imaging::SystemConfig sweep_system(bool tiny) {
  // --tiny keeps the CI smoke run fast; the full sizing makes the
  // per-frame beamform dominate thread handoff.
  return tiny ? us3d::imaging::scaled_system(8, 12, 48)
              : us3d::imaging::scaled_system(12, 24, 120);
}

std::vector<us3d::runtime::EchoFrame> sweep_frames(
    const us3d::imaging::SystemConfig& cfg, int count) {
  using namespace us3d;
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{
      acoustic::PointScatterer{
          grid.focal_point(cfg.volume.n_theta / 2, cfg.volume.n_phi / 2,
                           cfg.volume.n_depth / 2)
              .position,
          1.0},
      acoustic::PointScatterer{
          grid.focal_point(cfg.volume.n_theta / 4, 3 * cfg.volume.n_phi / 4,
                           3 * cfg.volume.n_depth / 4)
              .position,
          0.7},
  };
  return std::vector<runtime::EchoFrame>(
      static_cast<std::size_t>(count),
      runtime::EchoFrame{acoustic::synthesize_echoes(cfg, phantom), Vec3{},
                         0});
}

// Streaming workload for the host-side parallel runtime: a short replayed
// shot sequence and a worker sweep — run once per reconstruction path
// (block vs per-voxel) so BENCH_runtime.json tracks the block refactor's
// trajectory alongside the thread scaling.
std::string runtime_thread_sweep(bool tiny) {
  using namespace us3d;
  bench::section(
      "parallel runtime: FramePipeline thread x path sweep (TABLEFREE)");

  const imaging::SystemConfig cfg = sweep_system(tiny);
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kRect);
  const auto frames = sweep_frames(cfg, 2);
  const std::vector<int> thread_counts =
      tiny ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};

  MarkdownTable table({"path", "threads", "frames", "beamform [ms/frame]",
                       "sustained fps", "voxels/s", "speedup"});
  std::ostringstream sweep_json;
  for (const beamform::ReconstructPath path :
       {beamform::ReconstructPath::kBlock,
        beamform::ReconstructPath::kPerVoxel}) {
    const char* path_name =
        path == beamform::ReconstructPath::kBlock ? "block" : "per-voxel";
    double fps_1thread = 0.0;
    for (const int threads : thread_counts) {
      delay::TableFreeEngine prototype(cfg);
      runtime::FramePipeline pipeline(
          cfg, apod, prototype,
          runtime::PipelineConfig{.worker_threads = threads, .path = path});
      runtime::ReplayFrameSource source(frames, /*repeats=*/tiny ? 1 : 2);
      const runtime::PipelineStats stats = pipeline.run(
          source, [](const beamform::VolumeImage&, std::int64_t) {});
      if (threads == 1) fps_1thread = stats.sustained_fps();
      const double speedup =
          fps_1thread > 0.0 ? stats.sustained_fps() / fps_1thread : 0.0;
      table.add_row({path_name, std::to_string(threads),
                     std::to_string(stats.frames),
                     format_double(stats.beamform.mean_s() * 1e3, 2),
                     format_double(stats.sustained_fps(), 2),
                     format_si(stats.voxels_per_second(), "voxels/s", 2),
                     format_double(speedup, 2) + "x"});
      if (sweep_json.tellp() > 0) sweep_json << ',';
      sweep_json << "{\"path\":\"" << path_name << "\",\"threads\":" << threads
                 << ",\"speedup\":" << speedup
                 << ",\"stats\":" << stats.to_json() << '}';
    }
  }
  table.print(std::cout);
  std::cout << "\nEach worker sweeps a contiguous nappe range with its own "
               "cloned TABLEFREE engine;\nthe output is bit-identical to the "
               "serial beamformer at every thread count and on\nboth paths "
               "(asserted by tests/runtime/ and tests/beamform/), so the "
               "speedup\ncolumns are free lunch.\n";
  return sweep_json.str();
}

// The async bounded-queue runtime: queue-depth x compounding sweep. Each
// row streams a synthetic-aperture shot sequence through the overlapped
// ingest/beamform/compound/sink stage graph; with compound_origins = K
// every delivered volume coherently sums K insonifications (bit-identical
// to the serial sum — tests/runtime/test_async_pipeline.cpp pins it).
std::string async_compound_sweep(bool tiny) {
  using namespace us3d;
  bench::section(
      "async runtime: queue depth x compounding sweep (TABLESTEER-SA)");

  const imaging::SystemConfig cfg = sweep_system(tiny);
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kRect);
  const delay::SyntheticAperturePlan plan =
      delay::diverging_wave_plan(4, 4.0e-3);
  const int shots = tiny ? 8 : 16;
  auto base = sweep_frames(cfg, 1);
  std::vector<runtime::EchoFrame> frames;
  for (int i = 0; i < shots; ++i) {
    runtime::EchoFrame f = base.front();
    f.origin = Vec3{0.0, 0.0,
                    plan.origin_z[static_cast<std::size_t>(i) %
                                  plan.origin_z.size()]};
    frames.push_back(std::move(f));
  }

  struct Row {
    int depth;
    int compound;
  };
  const std::vector<Row> rows = tiny
                                    ? std::vector<Row>{{1, 1}, {2, 1}, {2, 4}}
                                    : std::vector<Row>{{1, 1},
                                                       {2, 1},
                                                       {4, 1},
                                                       {2, 4},
                                                       {4, 4}};
  MarkdownTable table({"queue depth", "compound K", "insonifications",
                       "volumes out", "sustained fps", "voxels/s"});
  std::ostringstream sweep_json;
  for (const Row row : rows) {
    delay::SyntheticApertureSteerEngine prototype(cfg, plan);
    runtime::FramePipeline pipeline(
        cfg, apod, prototype,
        runtime::PipelineConfig{.worker_threads = 2,
                                .queue_depth = row.depth,
                                .compound_origins = row.compound});
    runtime::ReplayFrameSource source(frames);
    const runtime::PipelineStats stats = pipeline.run(
        source, [](const beamform::VolumeImage&, std::int64_t) {});
    table.add_row({std::to_string(row.depth), std::to_string(row.compound),
                   std::to_string(stats.insonifications),
                   std::to_string(stats.frames),
                   format_double(stats.sustained_fps(), 2),
                   format_si(stats.voxels_per_second(), "voxels/s", 2)});
    if (sweep_json.tellp() > 0) sweep_json << ',';
    sweep_json << "{\"mode\":\"async\",\"queue_depth\":" << row.depth
               << ",\"compound_origins\":" << row.compound
               << ",\"stats\":" << stats.to_json() << '}';
  }
  table.print(std::cout);
  std::cout << "\nOrigin k+1 beamforms while origin k accumulates; the "
               "compounded volume is the\nexact serial sum. Depth > 2 only "
               "pays when the sink is burstier than the\nbeamformer — the "
               "ring bounds in-flight volumes either way.\n";
  return sweep_json.str();
}

void write_bench_json(const us3d::imaging::SystemConfig& cfg, bool tiny,
                      const std::string& sweep_json,
                      const std::string& async_json) {
  // "tiny" marks CI smoke numbers: trajectory tooling must not diff them
  // against full-size sweeps (different volume, thread set and repeats).
  std::ofstream json("BENCH_runtime.json");
  json << "{\"bench\":\"e10_runtime_thread_sweep\",\"engine\":\"TABLEFREE\","
       << "\"tiny\":" << (tiny ? "true" : "false") << ','
       << "\"probe\":\"" << cfg.probe.elements_x << 'x'
       << cfg.probe.elements_y << "\",\"volume\":\"" << cfg.volume.n_theta
       << 'x' << cfg.volume.n_phi << 'x' << cfg.volume.n_depth << "\","
       << "\"sweep\":[" << sweep_json << "],\"async_sweep\":[" << async_json
       << "]}\n";
  std::cout << "\nwrote BENCH_runtime.json\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace us3d;
  const bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";
  bench::banner("E10", "TABLESTEER streaming and buffering (Sec. V-B)");

  const imaging::SystemConfig cfg = imaging::paper_system();
  const hw::FabricConfig fabric;
  const hw::FabricAnalysis a = hw::analyze_fabric(cfg, fabric);

  bench::PaperComparison cmp;
  cmp.row("Adders per block", "8 + 16x8 = 136",
          std::to_string(fabric.adders_per_block()))
      .row("Peak throughput", "3.3 Tdelays/s @ 200 MHz",
           format_si(a.peak_delays_per_second, "delays/s", 2))
      .row("Required throughput", "2.5e12 delays/s",
           format_si(a.required_delays_per_second, "delays/s", 2))
      .row("Frame rate at peak", "19.7 fps",
           format_double(a.frame_rate_at_peak, 1) + " fps")
      .row("Table fetches", "960 /s",
           format_double(a.table_fetches_per_second, 0) + " /s")
      .row("DRAM bandwidth", "5.3 GB/s",
           format_bytes(a.dram_bandwidth_bytes_per_second) + "/s")
      .row("BRAM reads per fetched entry", "(implied 8x reuse)",
           format_double(a.reuse_per_fetched_entry, 1) + "x");
  cmp.print();

  if (tiny) {
    // --tiny (the CI smoke mode) skips the cycle-level hw simulations —
    // they track paper claims that do not change per PR — and shrinks the
    // runtime sweeps below.
    const imaging::SystemConfig host_cfg = sweep_system(true);
    const std::string thread_rows = runtime_thread_sweep(true);
    const std::string async_rows = async_compound_sweep(true);
    write_bench_json(host_cfg, /*tiny=*/true, thread_rows, async_rows);
    return 0;
  }

  bench::section("cycle-level circular-buffer simulation (4 insonifications)");
  MarkdownTable t({"Scenario", "BW headroom", "Blackouts", "Underrun",
                   "Min fill [words]", "Min margin [cycles]"});
  struct Scenario {
    const char* name;
    double headroom;
    std::int64_t period, duration;
  };
  for (const Scenario s : {
           Scenario{"balanced", 1.02, 0, 0},
           Scenario{"10% headroom", 1.10, 0, 0},
           Scenario{"refresh blackouts", 1.05, 7800, 200},
           Scenario{"long stalls", 1.05, 50'000, 12'000},
           Scenario{"starved (50% BW)", 0.50, 0, 0},
       }) {
    const auto r = hw::simulate_fabric_streaming(cfg, fabric, 4, s.headroom,
                                                 s.period, s.duration);
    t.add_row({s.name, format_double(s.headroom, 2),
               s.period ? std::to_string(s.duration) + "/" +
                              std::to_string(s.period)
                        : "none",
               r.underrun ? "YES" : "no",
               std::to_string(r.min_fill_words),
               format_double(r.min_margin_cycles, 0)});
  }
  t.print(std::cout);
  std::cout << "\nWith bandwidth matched to the table-fetch rate, the "
               "128 x 1k circular buffer\nsustains streaming with a margin "
               "far above the paper's 1k-cycle claim, and only\na "
               "half-bandwidth producer or multi-thousand-cycle stalls "
               "underrun it.\n";

  bench::section("buffer-depth sweep (the 'arbitrary number of chunks' "
                 "dial of Sec. V-B)");
  MarkdownTable sweep({"lines per bank", "on-chip slice", "underrun",
                       "min margin [cycles]",
                       "longest blackout tolerated"});
  for (const std::int64_t lines : {256, 512, 1024, 2048, 4096}) {
    hw::FabricConfig f = fabric;
    f.bram_lines_per_bank = lines;
    const auto clean = hw::simulate_fabric_streaming(cfg, f, 3, 1.02);
    // Binary-search the longest producer blackout the buffer absorbs.
    std::int64_t lo = 0, hi = 200'000;
    while (lo < hi) {
      const std::int64_t mid = (lo + hi + 1) / 2;
      const auto r =
          hw::simulate_fabric_streaming(cfg, f, 2, 1.02, 400'000, mid);
      if (r.underrun) {
        hi = mid - 1;
      } else {
        lo = mid;
      }
    }
    sweep.add_row({std::to_string(lines),
                   format_bits(static_cast<double>(lines) * 128.0 * 18.0),
                   clean.underrun ? "YES" : "no",
                   format_double(clean.min_margin_cycles, 0),
                   std::to_string(lo) + " cycles"});
  }
  sweep.print(std::cout);
  std::cout << "\nHalving the slice halves both the BRAM cost and the "
               "stall tolerance: the chunk\nsize is a pure "
               "area-vs-robustness dial, as Sec. V-B implies.\n";

  const imaging::SystemConfig host_cfg = sweep_system(false);
  const std::string thread_rows = runtime_thread_sweep(false);
  const std::string async_rows = async_compound_sweep(false);
  write_bench_json(host_cfg, /*tiny=*/false, thread_rows, async_rows);
  return 0;
}
