// E10 — Sec. V-B streaming claims: the delay fabric's throughput
// (3.3 Tdelays/s at 200 MHz), the 960 fetches/s DRAM stream at 4.1-5.3
// GB/s, and the circular-buffer latency margin ("an ample margin of 1k
// cycles"), checked with a cycle-level producer/consumer simulation
// including DRAM blackout injection.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "acoustic/echo_synth.h"
#include "bench_util.h"
#include "delay/tablefree.h"
#include "hw/delay_fabric.h"
#include "runtime/frame_pipeline.h"

namespace {

// Streaming workload for the host-side parallel runtime: a scaled system
// large enough that the per-frame beamform dominates thread handoff, a
// short replayed shot sequence, and a 1/2/4/8 worker sweep — run once per
// reconstruction path (block vs per-voxel) so BENCH_runtime.json tracks
// the block refactor's trajectory alongside the thread scaling.
void runtime_thread_sweep() {
  using namespace us3d;
  bench::section(
      "parallel runtime: FramePipeline thread x path sweep (TABLEFREE)");

  const imaging::SystemConfig cfg = imaging::scaled_system(12, 24, 120);
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kRect);
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{
      acoustic::PointScatterer{grid.focal_point(12, 12, 60).position, 1.0},
      acoustic::PointScatterer{grid.focal_point(6, 18, 90).position, 0.7},
  };
  std::vector<runtime::EchoFrame> frames(
      2, runtime::EchoFrame{acoustic::synthesize_echoes(cfg, phantom),
                            Vec3{}, 0});

  MarkdownTable table({"path", "threads", "frames", "beamform [ms/frame]",
                       "sustained fps", "voxels/s", "speedup"});
  std::ostringstream sweep_json;
  for (const beamform::ReconstructPath path :
       {beamform::ReconstructPath::kBlock,
        beamform::ReconstructPath::kPerVoxel}) {
    const char* path_name =
        path == beamform::ReconstructPath::kBlock ? "block" : "per-voxel";
    double fps_1thread = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      delay::TableFreeEngine prototype(cfg);
      runtime::FramePipeline pipeline(
          cfg, apod, prototype,
          runtime::PipelineConfig{.worker_threads = threads, .path = path});
      runtime::ReplayFrameSource source(frames, /*repeats=*/2);
      const runtime::PipelineStats stats = pipeline.run(
          source, [](const beamform::VolumeImage&, std::int64_t) {});
      if (threads == 1) fps_1thread = stats.sustained_fps();
      const double speedup =
          fps_1thread > 0.0 ? stats.sustained_fps() / fps_1thread : 0.0;
      table.add_row({path_name, std::to_string(threads),
                     std::to_string(stats.frames),
                     format_double(stats.beamform.mean_s() * 1e3, 2),
                     format_double(stats.sustained_fps(), 2),
                     format_si(stats.voxels_per_second(), "voxels/s", 2),
                     format_double(speedup, 2) + "x"});
      if (sweep_json.tellp() > 0) sweep_json << ',';
      sweep_json << "{\"path\":\"" << path_name << "\",\"threads\":" << threads
                 << ",\"speedup\":" << speedup
                 << ",\"stats\":" << stats.to_json() << '}';
    }
  }
  table.print(std::cout);
  std::cout << "\nEach worker sweeps a contiguous nappe range with its own "
               "cloned TABLEFREE engine;\nthe output is bit-identical to the "
               "serial beamformer at every thread count and on\nboth paths "
               "(asserted by tests/runtime/ and tests/beamform/), so the "
               "speedup\ncolumns are free lunch.\n";

  std::ofstream json("BENCH_runtime.json");
  json << "{\"bench\":\"e10_runtime_thread_sweep\",\"engine\":\"TABLEFREE\","
       << "\"probe\":\"" << cfg.probe.elements_x << 'x'
       << cfg.probe.elements_y << "\",\"volume\":\"" << cfg.volume.n_theta
       << 'x' << cfg.volume.n_phi << 'x' << cfg.volume.n_depth << "\","
       << "\"sweep\":[" << sweep_json.str() << "]}\n";
  std::cout << "\nwrote BENCH_runtime.json\n";
}

}  // namespace

int main() {
  using namespace us3d;
  bench::banner("E10", "TABLESTEER streaming and buffering (Sec. V-B)");

  const imaging::SystemConfig cfg = imaging::paper_system();
  const hw::FabricConfig fabric;
  const hw::FabricAnalysis a = hw::analyze_fabric(cfg, fabric);

  bench::PaperComparison cmp;
  cmp.row("Adders per block", "8 + 16x8 = 136",
          std::to_string(fabric.adders_per_block()))
      .row("Peak throughput", "3.3 Tdelays/s @ 200 MHz",
           format_si(a.peak_delays_per_second, "delays/s", 2))
      .row("Required throughput", "2.5e12 delays/s",
           format_si(a.required_delays_per_second, "delays/s", 2))
      .row("Frame rate at peak", "19.7 fps",
           format_double(a.frame_rate_at_peak, 1) + " fps")
      .row("Table fetches", "960 /s",
           format_double(a.table_fetches_per_second, 0) + " /s")
      .row("DRAM bandwidth", "5.3 GB/s",
           format_bytes(a.dram_bandwidth_bytes_per_second) + "/s")
      .row("BRAM reads per fetched entry", "(implied 8x reuse)",
           format_double(a.reuse_per_fetched_entry, 1) + "x");
  cmp.print();

  bench::section("cycle-level circular-buffer simulation (4 insonifications)");
  MarkdownTable t({"Scenario", "BW headroom", "Blackouts", "Underrun",
                   "Min fill [words]", "Min margin [cycles]"});
  struct Scenario {
    const char* name;
    double headroom;
    std::int64_t period, duration;
  };
  for (const Scenario s : {
           Scenario{"balanced", 1.02, 0, 0},
           Scenario{"10% headroom", 1.10, 0, 0},
           Scenario{"refresh blackouts", 1.05, 7800, 200},
           Scenario{"long stalls", 1.05, 50'000, 12'000},
           Scenario{"starved (50% BW)", 0.50, 0, 0},
       }) {
    const auto r = hw::simulate_fabric_streaming(cfg, fabric, 4, s.headroom,
                                                 s.period, s.duration);
    t.add_row({s.name, format_double(s.headroom, 2),
               s.period ? std::to_string(s.duration) + "/" +
                              std::to_string(s.period)
                        : "none",
               r.underrun ? "YES" : "no",
               std::to_string(r.min_fill_words),
               format_double(r.min_margin_cycles, 0)});
  }
  t.print(std::cout);
  std::cout << "\nWith bandwidth matched to the table-fetch rate, the "
               "128 x 1k circular buffer\nsustains streaming with a margin "
               "far above the paper's 1k-cycle claim, and only\na "
               "half-bandwidth producer or multi-thousand-cycle stalls "
               "underrun it.\n";

  bench::section("buffer-depth sweep (the 'arbitrary number of chunks' "
                 "dial of Sec. V-B)");
  MarkdownTable sweep({"lines per bank", "on-chip slice", "underrun",
                       "min margin [cycles]",
                       "longest blackout tolerated"});
  for (const std::int64_t lines : {256, 512, 1024, 2048, 4096}) {
    hw::FabricConfig f = fabric;
    f.bram_lines_per_bank = lines;
    const auto clean = hw::simulate_fabric_streaming(cfg, f, 3, 1.02);
    // Binary-search the longest producer blackout the buffer absorbs.
    std::int64_t lo = 0, hi = 200'000;
    while (lo < hi) {
      const std::int64_t mid = (lo + hi + 1) / 2;
      const auto r =
          hw::simulate_fabric_streaming(cfg, f, 2, 1.02, 400'000, mid);
      if (r.underrun) {
        hi = mid - 1;
      } else {
        lo = mid;
      }
    }
    sweep.add_row({std::to_string(lines),
                   format_bits(static_cast<double>(lines) * 128.0 * 18.0),
                   clean.underrun ? "YES" : "no",
                   format_double(clean.min_margin_cycles, 0),
                   std::to_string(lo) + " cycles"});
  }
  sweep.print(std::cout);
  std::cout << "\nHalving the slice halves both the BRAM cost and the "
               "stall tolerance: the chunk\nsize is a pure "
               "area-vs-robustness dial, as Sec. V-B implies.\n";

  runtime_thread_sweep();
  return 0;
}
