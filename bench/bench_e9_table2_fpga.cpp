// E9 — Table II: Virtex-7 XC7VX1140T-2 synthesis results for TABLEFREE,
// TABLESTEER-14b and TABLESTEER-18b, regenerated from the analytic
// resource/timing models with accuracy columns measured live by the error
// harness (strided sweeps of the paper system).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "delay/error_harness.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "fpga/report.h"
#include "imaging/scan_order.h"
#include "probe/directivity.h"

int main() {
  using namespace us3d;
  bench::banner("E9", "Table II: FPGA feasibility of both architectures");

  const imaging::SystemConfig cfg = imaging::paper_system();
  fpga::Table2Inputs inputs;

  // TABLEFREE: measure selection accuracy on a strided sweep of the paper
  // system, and tracker behaviour on a *contiguous* nappe sweep (strided
  // sweeps jump several focal points at a time and would overstate the
  // segment-step rate the hardware sees).
  {
    delay::TableFreeEngine engine(cfg);
    const auto rep = delay::measure_selection_error(
        cfg, engine, imaging::ScanOrder::kNappeByNappe,
        delay::SweepStrides{8, 8, 25, 7, 7});
    inputs.tablefree = {rep.all.mean_abs(), rep.all.max_abs()};
    inputs.segment_count = engine.pwl().segment_count();

    const auto contiguous = imaging::scaled_system(8, 32, 250);
    delay::TableFreeEngine tracker_engine(contiguous);
    tracker_engine.begin_frame(Vec3{});
    std::vector<std::int32_t> out(
        static_cast<std::size_t>(tracker_engine.element_count()));
    const imaging::VolumeGrid grid(contiguous.volume);
    imaging::for_each_focal_point(
        grid, imaging::ScanOrder::kNappeByNappe,
        [&](const imaging::FocalPoint& fp) {
          tracker_engine.compute(fp, out);
        });
    inputs.tablefree_stats = tracker_engine.tracker_stats();
  }

  // TABLESTEER: measure within the -6 dB directivity cone, as the paper's
  // apodization argument prescribes.
  const auto dir = probe::Directivity::from_db_down(
      cfg.probe.pitch_m, cfg.wavelength_m(), 6.0);
  const delay::SweepStrides ts_strides{16, 16, 50, 9, 9};
  {
    delay::TableSteerEngine engine(cfg, delay::TableSteerConfig::bits14());
    const auto rep = delay::measure_selection_error(
        cfg, engine, imaging::ScanOrder::kNappeByNappe, ts_strides, dir);
    inputs.tablesteer14 = {rep.filtered.mean_abs(), rep.filtered.max_abs()};
  }
  {
    delay::TableSteerEngine engine(cfg, delay::TableSteerConfig::bits18());
    const auto rep = delay::measure_selection_error(
        cfg, engine, imaging::ScanOrder::kNappeByNappe, ts_strides, dir);
    inputs.tablesteer18 = {rep.filtered.mean_abs(), rep.filtered.max_abs()};
  }

  bench::section("regenerated Table II (XC7VX1140T-2)");
  const auto rows = fpga::generate_table2(cfg, fpga::xc7vx1140t(), inputs);
  fpga::render_table2(rows).print(std::cout);

  bench::section("paper's Table II for comparison");
  MarkdownTable paper({"Architecture", "LUTs", "Registers", "BRAM", "Clock",
                       "Offchip BW", "Inaccuracy", "Throughput",
                       "Frame Rate", "Channels"});
  paper
      .add_row({"TABLEFREE", "100%", "23%", "0%", "167 MHz", "none",
                "avg 0.25, max 2", "1.67 Tdelays/s", "7.8 fps", "42x42"})
      .add_row({"TABLESTEER-14b", "91%", "25%", "25%", "200 MHz", "4.1 GB/s",
                "avg 1.55, max 100", "3.3 Tdelays/s", "19.7 fps", "100x100"})
      .add_row({"TABLESTEER-18b", "100%", "30%", "25%", "200 MHz",
                "5.3 GB/s", "avg 1.44, max 100", "3.3 Tdelays/s", "19.7 fps",
                "100x100"});
  paper.print(std::cout);

  bench::section("UltraScale projection (Sec. VI-B)");
  const auto us_rows =
      fpga::generate_table2(cfg, fpga::ultrascale_projection(), inputs);
  std::cout << "TABLEFREE on a 2x-LUT UltraScale part supports "
            << us_rows[0].channels_x << "x" << us_rows[0].channels_y
            << " channels (paper projects 100x100 within one or two "
               "further generations).\n";
  return 0;
}
