// A2 — Ablation: the delta dial of TABLEFREE (Sec. VI-A: "the average
// inaccuracy can be arbitrarily reduced with a lower delta ... at the cost
// of increasing LUT area"). Sweeps delta and reports segments, measured
// accuracy, per-unit resources and supported channels.
#include <iostream>

#include "bench_util.h"
#include "delay/error_harness.h"
#include "delay/tablefree.h"
#include "fpga/tablefree_cost.h"

int main() {
  using namespace us3d;
  bench::banner("A2", "TABLEFREE delta ablation (accuracy vs area)");

  const auto small = imaging::scaled_system(10, 12, 80);
  const auto paper = imaging::paper_system();
  const fpga::FpgaDevice device = fpga::xc7vx1140t();

  MarkdownTable t({"delta [samples]", "segments (paper domain)",
                   "mean |err| [samples]", "max |err| [samples]",
                   "unit LUTs", "max channels"});
  for (const double delta : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
    delay::TableFreeConfig tf;
    tf.delta = delta;
    // Accuracy on the scaled system (exhaustive).
    delay::TableFreeEngine engine(small, tf);
    const auto rep = delay::measure_selection_error(
        small, engine, imaging::ScanOrder::kNappeByNappe,
        delay::SweepStrides{});
    // Segment count for the paper-domain table.
    const delay::TableFreeEngine paper_engine(paper, tf);
    const auto stats = engine.tracker_stats();
    const auto feas = fpga::analyze_tablefree_fpga(
        paper, device, paper_engine.pwl().segment_count(), stats);
    t.add_row({format_double(delta, 4),
               std::to_string(paper_engine.pwl().segment_count()),
               format_double(rep.all.mean_abs(), 4),
               format_double(rep.all.max_abs(), 0),
               format_double(feas.per_unit.luts, 0),
               std::to_string(feas.max_channels_side) + "x" +
                   std::to_string(feas.max_channels_side)});
  }
  t.print(std::cout);

  std::cout << "\ndelta = 0.25 is the paper's design point: ~70 segments, "
               "mean error ~quarter\nsample, 42x42 channels on the "
               "XC7VX1140T. Halving delta costs segments (LUT ROM)\nbut "
               "barely moves the selection error once fixed-point effects "
               "dominate; doubling\nit gives back little area because the "
               "multiplier, not the ROM, dominates.\n";
  return 0;
}
