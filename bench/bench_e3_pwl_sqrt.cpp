// E3 — Figure 2: piecewise-linear sqrt approximation. Reproduces the "70
// segments for delta = 0.25 samples" design point, the error-vs-x shape
// (bounded by +/-delta with equal ripple), and the delta sweep.
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "delay/pwl_sqrt.h"
#include "delay/tablefree.h"
#include "imaging/system_config.h"

int main() {
  using namespace us3d;
  bench::banner("E3", "PWL sqrt approximation (Figure 2)");

  const imaging::SystemConfig cfg = imaging::paper_system();
  const delay::TableFreeEngine engine(cfg);
  const delay::PwlSqrt& pwl = engine.pwl();

  bench::PaperComparison cmp;
  cmp.row("Segments for delta = 0.25 samples", "70",
          std::to_string(pwl.segment_count()))
      .row("Max approximation error", "<= 0.25 samples",
           format_double(pwl.measured_max_error(256), 4) + " samples");
  cmp.print();

  bench::section("segment table (every 8th segment)");
  MarkdownTable t({"segment", "x_start [sample^2]", "slope c1", "value c0"});
  const auto& segs = pwl.segments();
  for (std::size_t i = 0; i < segs.size(); i += 8) {
    t.add_row({std::to_string(i), format_count(segs[i].x_start),
               format_double(segs[i].slope, 8),
               format_double(segs[i].value, 2)});
  }
  t.print(std::cout);

  bench::section("error curve samples (Figure 2b series)");
  MarkdownTable err({"x [sample^2]", "sqrt(x)", "PWL(x)", "error [samples]"});
  for (double x = pwl.x_min(); x < pwl.x_max(); x *= 3.7) {
    err.add_row({format_count(x), format_double(std::sqrt(x), 3),
                 format_double(pwl.evaluate(x), 3),
                 format_double(pwl.evaluate(x) - std::sqrt(x), 4)});
  }
  err.print(std::cout);

  bench::section("segment count vs delta (accuracy/area dial, Sec. VI-A)");
  MarkdownTable sweep({"delta [samples]", "segments", "measured max error",
                       "LUT bits (c1+c0+bound)"});
  for (const double delta : {1.0, 0.5, 0.25, 0.125, 0.0625, 0.03125}) {
    const delay::PwlSqrt p =
        delay::PwlSqrt::build(pwl.x_min(), pwl.x_max(), delta);
    const delay::FixedPwlSqrt fp(p, delay::FixedPwlSqrt::Config{});
    sweep.add_row({format_double(delta, 5), std::to_string(p.segment_count()),
                   format_double(p.measured_max_error(128), 5),
                   format_double(fp.lut_bits(), 0)});
  }
  sweep.print(std::cout);
  return 0;
}
