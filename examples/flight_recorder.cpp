// Flight-recorder walkthrough and end-to-end validation: run an imaging
// service with every telemetry layer live (trace + metrics + events +
// resource profiler), force a session to die mid-stream through a
// throwing sink, and let the failure hook write a post-mortem bundle.
// Then play investigator: re-read the bundle through the repo's strict
// JSON reader and verify it is complete — manifest + all four artifacts,
// each valid JSON, with a balanced Chrome trace. Exits nonzero if any
// check fails, so CI can run this binary as the bundle acceptance test.
//
//   US3D_POSTMORTEM_DIR=postmortem ./example_flight_recorder
//   (defaults the directory to ./postmortem when the env var is unset)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "acoustic/echo_synth.h"
#include "common/json_reader.h"
#include "common/prng.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/resource_profiler.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "service/imaging_service.h"

using namespace us3d;
using runtime::EchoFrame;
using service::ImagingService;
using service::Scenario;

namespace {

Scenario tiny(const std::string& name) {
  Scenario s;
  s.name = name;
  s.engine = service::EngineFamily::kTableFree;
  s.probe_elements = 5;
  s.n_lines = 6;
  s.n_depth = 16;
  s.worker_threads = 2;
  s.queue_depth = 2;
  return s;
}

std::vector<EchoFrame> frames_for(const Scenario& scenario, int count,
                                  std::uint64_t seed) {
  const imaging::SystemConfig cfg = scenario.system();
  const imaging::VolumeGrid grid(cfg.volume);
  SplitMix64 rng(seed);
  const std::vector<Vec3> origins = scenario.origins(count);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < count; ++i) {
    const acoustic::Phantom phantom{acoustic::PointScatterer{
        grid.focal_point(static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(cfg.volume.n_theta))),
                         cfg.volume.n_phi / 2, cfg.volume.n_depth / 2)
            .position,
        1.0}};
    acoustic::SynthesisOptions synth;
    synth.origin = origins[static_cast<std::size_t>(i)];
    frames.push_back(EchoFrame{acoustic::synthesize_echoes(cfg, phantom, synth),
                               origins[static_cast<std::size_t>(i)], i});
  }
  return frames;
}

const runtime::VolumeSink kDevNull = [](const beamform::VolumeImage&,
                                        std::int64_t) {};

/// Polls until `want` volumes came out (the async stages run behind the
/// submit loop) or the session goes terminal. Returns delivered count.
int drain(ImagingService& service, int session, const runtime::VolumeSink& sink,
          int want) {
  int delivered = 0;
  for (int spin = 0; spin < 2000 && delivered < want; ++spin) {
    delivered += service.poll(session, sink);
    if (service.session_failed(session)) break;
    if (delivered < want) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return delivered;
}

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::cout << "  ok: " << what << "\n";
  } else {
    std::cout << "  FAIL: " << what << "\n";
    ++g_failures;
  }
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Parses one bundle artifact; returns null-kind on any failure (counted).
JsonValue parse_artifact(const std::string& bundle, const std::string& name) {
  const std::string text = slurp(bundle + "/" + name);
  check(!text.empty(), name + " exists and is non-empty");
  if (text.empty()) return JsonValue();
  try {
    JsonValue v = parse_json(text);
    check(true, name + " is valid JSON (strict reader)");
    return v;
  } catch (const std::exception& e) {
    check(false, name + " is valid JSON: " + e.what());
    return JsonValue();
  }
}

void validate_bundle(const std::string& bundle) {
  std::cout << "\nvalidating bundle " << bundle << "\n";

  const JsonValue manifest = parse_artifact(bundle, "manifest.json");
  if (manifest.is_object()) {
    check(manifest.at("reason").as_string() == "session_failure",
          "manifest reason is session_failure");
    check(manifest.at("artifacts").size() == 4, "manifest lists 4 artifacts");
  }

  const JsonValue trace = parse_artifact(bundle, "trace.json");
  if (trace.is_object()) {
    // Balance check: per thread, B and E counts match and nesting never
    // goes negative — the same invariant CI asserts on trace.json.
    std::map<std::int64_t, std::int64_t> depth;
    bool balanced = true;
    for (const JsonValue& ev : trace.at("traceEvents").elements()) {
      const std::string& ph = ev.at("ph").as_string();
      const std::int64_t tid = ev.at("tid").as_int();
      if (ph == "B") ++depth[tid];
      if (ph == "E" && --depth[tid] < 0) balanced = false;
    }
    for (const auto& [tid, d] : depth) balanced = balanced && d == 0;
    check(balanced, "trace B/E events balance on every thread");
  }

  const JsonValue metrics = parse_artifact(bundle, "metrics.json");
  if (metrics.is_object()) {
    const JsonValue* counters = metrics.find("counters");
    check(counters != nullptr &&
              counters->find("service.frames_submitted") != nullptr,
          "metrics.json carries service counters");
  }

  const JsonValue events = parse_artifact(bundle, "events.json");
  if (events.is_object()) {
    bool saw_failure = false;
    for (const JsonValue& ev : events.at("events").elements()) {
      if (ev.at("name").as_string() == "session.failed") saw_failure = true;
    }
    check(saw_failure, "events.json records the session.failed event");
  }

  const JsonValue resources = parse_artifact(bundle, "resources.json");
  if (resources.is_object()) {
    check(resources.find("rss_bytes") != nullptr &&
              resources.find("stages") != nullptr,
          "resources.json has rss and per-stage sections");
  }
}

}  // namespace

int main() {
  // Bring up all four telemetry layers explicitly (a real deployment
  // would use US3D_TRACE / US3D_EVENTS / US3D_PROFILE / US3D_POSTMORTEM_DIR).
  obs::TraceCollector::instance().set_enabled(true);
  obs::TraceCollector::instance().reset();
  obs::EventLog::instance().set_enabled(true);
  obs::EventLog::instance().reset();
  obs::set_thread_name("client");
  obs::ResourceProfiler::global().register_current_thread("client");
  obs::ResourceProfiler::global().start(obs::MetricsRegistry::global(),
                                        std::chrono::milliseconds(20));

  obs::FlightRecorderOptions rec;
  const char* dir = std::getenv("US3D_POSTMORTEM_DIR");
  rec.directory = dir != nullptr ? dir : "postmortem";
  rec.min_interval = std::chrono::milliseconds(0);  // demo: allow every dump
  obs::FlightRecorder::global().configure(rec);
  std::cout << "post-mortem bundles go to " << rec.directory << "\n";

  ImagingService service(service::ServiceBudget{.worker_threads = 4,
                                                .inflight_volumes = 8});

  // A healthy session and a doomed one.
  const auto healthy = service.open_session(
      tiny("healthy"), {.priority = service::PriorityClass::kInteractive});
  const auto doomed = service.open_session(
      tiny("doomed"), {.priority = service::PriorityClass::kRoutine});

  for (EchoFrame& f : frames_for(tiny("x"), 3, 11)) {
    service.submit(healthy.session, std::move(f));
  }
  drain(service, healthy.session, kDevNull, 3);

  // The SLO watchdog runs alongside; its breach callback is the other
  // dump trigger (a tiny threshold makes the demo breach deterministic).
  obs::SloWatchdog::Options wd_opts;
  wd_opts.breach_after = 2;
  wd_opts.recover_after = 2;
  std::vector<obs::SloTarget> targets;
  obs::SloTarget tight;
  tight.name = "demo_latency";
  tight.kind = obs::SloTarget::Kind::kQuantileMax;
  tight.metric = "service.latency_s.interactive";
  tight.threshold = 1e-9;  // everything real breaches this
  tight.min_count = 1;
  targets.push_back(tight);
  obs::SloWatchdog watchdog(obs::MetricsRegistry::global(), targets, wd_opts);
  watchdog.set_breach_callback([](const obs::SloBreach& breach) {
    std::cout << "SLO '" << breach.target
              << (breach.entered ? "' entered breach" : "' recovered")
              << " (observed " << breach.observed << ")\n";
    if (breach.entered) {
      obs::FlightRecorder::global().dump("slo_breach");
    }
  });
  watchdog.evaluate_once();  // first bad window (initial histogram)
  for (EchoFrame& f : frames_for(tiny("x"), 2, 13)) {
    service.submit(healthy.session, std::move(f));
  }
  drain(service, healthy.session, kDevNull, 2);
  watchdog.evaluate_once();  // second bad window -> breach edge -> dump

  // Force the failure: a sink that throws mid-delivery kills the doomed
  // session; the service's failure hook writes the post-mortem bundle.
  for (EchoFrame& f : frames_for(tiny("x"), 3, 17)) {
    service.submit(doomed.session, std::move(f));
  }
  drain(service, doomed.session,
        [](const beamform::VolumeImage&, std::int64_t) {
          throw std::runtime_error("simulated display failure");
        },
        3);
  check(service.session_failed(doomed.session), "doomed session failed");
  check(!service.session_failed(healthy.session),
        "healthy session unaffected (failure isolation)");

  service.close_session(doomed.session, kDevNull);
  service.close_session(healthy.session, kDevNull);
  obs::ResourceProfiler::global().stop();

  const auto written = obs::FlightRecorder::global().bundles_written();
  std::cout << "\nbundles written: " << written << "\n";
  check(written >= 2, "session failure + SLO breach both dumped");

  // Find the session_failure bundle (newest matching directory).
  namespace fs = std::filesystem;
  std::vector<std::string> bundles;
  if (fs::exists(rec.directory)) {
    for (const auto& entry : fs::directory_iterator(rec.directory)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("pm-", 0) == 0 &&
          name.find("session_failure") != std::string::npos) {
        bundles.push_back(entry.path().string());
      }
    }
  }
  std::sort(bundles.begin(), bundles.end());
  check(!bundles.empty(), "a session_failure bundle exists");
  if (!bundles.empty()) validate_bundle(bundles.back());

  // Bonus: the Prometheus view of the same registry.
  const std::string prom =
      obs::render_prometheus(obs::MetricsRegistry::global());
  check(prom.find("service_frames_submitted_total") != std::string::npos,
        "prometheus exposition renders service counters");

  std::cout << "\n" << (g_failures == 0 ? "ALL CHECKS PASSED" : "FAILURES")
            << " (" << g_failures << " failures)\n";
  return g_failures == 0 ? 0 : 1;
}
