// Observability walkthrough: run a four-session imaging service with
// tracing enabled, then export everything the run left behind — a
// Chrome/Perfetto trace.json with per-stage spans from every session's
// pipeline plus the service's admission/shed events, and the live
// metrics registry snapshot an operator would scrape.
//
//   ./example_trace_session && open https://ui.perfetto.dev  (load trace.json)
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "common/prng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/imaging_service.h"

using namespace us3d;
using runtime::EchoFrame;
using service::ImagingService;
using service::Scenario;

namespace {

Scenario tiny(const std::string& name) {
  Scenario s;
  s.name = name;
  s.engine = service::EngineFamily::kTableFree;
  s.probe_elements = 5;
  s.n_lines = 6;
  s.n_depth = 16;
  s.worker_threads = 2;
  s.queue_depth = 2;
  return s;
}

std::vector<EchoFrame> frames_for(const Scenario& scenario, int count,
                                  std::uint64_t seed) {
  const imaging::SystemConfig cfg = scenario.system();
  const imaging::VolumeGrid grid(cfg.volume);
  SplitMix64 rng(seed);
  const std::vector<Vec3> origins = scenario.origins(count);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < count; ++i) {
    const acoustic::Phantom phantom{acoustic::PointScatterer{
        grid.focal_point(static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(cfg.volume.n_theta))),
                         cfg.volume.n_phi / 2, cfg.volume.n_depth / 2)
            .position,
        1.0}};
    acoustic::SynthesisOptions synth;
    synth.origin = origins[static_cast<std::size_t>(i)];
    frames.push_back(EchoFrame{acoustic::synthesize_echoes(cfg, phantom, synth),
                               origins[static_cast<std::size_t>(i)], i});
  }
  return frames;
}

const runtime::VolumeSink kDevNull = [](const beamform::VolumeImage&,
                                        std::int64_t) {};

}  // namespace

int main() {
  // Tracing is compiled in by default but runtime-off; a service that
  // wants a flight recording turns it on explicitly.
  obs::TraceCollector::instance().set_enabled(true);
  obs::TraceCollector::instance().reset();
  obs::set_thread_name("client");
  std::cout << "tracing: "
            << (obs::TraceCollector::compiled_in() ? "compiled in"
                                                   : "compiled OUT")
            << ", enabled\n\n";

  ImagingService service(service::ServiceBudget{.worker_threads = 4,
                                                .inflight_volumes = 8});

  // Four concurrent sessions across the QoS vocabulary. The compounding
  // one exercises the stage.compound spans; the flooded one forces
  // service.shed events.
  const auto live = service.open_session(
      tiny("live-interactive"),
      {.priority = service::PriorityClass::kInteractive,
       .policy = service::ShedPolicy::kAdaptiveDepth});
  const auto exam = service.open_session(
      tiny("routine-exam"), {.priority = service::PriorityClass::kRoutine});
  const auto sweep = service.open_session(
      tiny("bulk-research"), {.priority = service::PriorityClass::kBulk,
                              .policy = service::ShedPolicy::kDropOldest});
  Scenario sa = tiny("sa-compound");
  sa.engine = service::EngineFamily::kTableSteerSA;
  sa.sa_origins = 2;
  sa.compound_origins = 2;
  const auto compound = service.open_session(sa);
  // A fifth session bounces off the worker budget — a service.refuse
  // event in the trace.
  const auto refused = service.open_session(tiny("one-too-many"));
  std::cout << "admitted sessions " << live.session << ", " << exam.session
            << ", " << sweep.session << ", " << compound.session
            << "; refused: " << refused.reason << "\n";

  // Stream. The bulk session floods without polling to force shedding;
  // the others pace politely.
  auto flood = frames_for(tiny("x"), 8, 7);
  for (EchoFrame& f : flood) service.submit(sweep.session, std::move(f));
  for (const auto& adm : {live, exam}) {
    auto frames = frames_for(tiny("x"), 3, 11 + adm.session);
    for (EchoFrame& f : frames) {
      service.submit(adm.session, std::move(f));
      service.poll(adm.session, kDevNull);
    }
  }
  auto sa_frames = frames_for(sa, 4, 29);
  for (EchoFrame& f : sa_frames) {
    service.submit(compound.session, std::move(f));
    service.poll(compound.session, kDevNull);
  }
  for (const auto& adm : {live, exam, sweep, compound}) {
    const service::SessionStats stats =
        service.close_session(adm.session, kDevNull);
    std::cout << "session " << stats.id << ": " << stats.delivered_frames
              << " delivered, " << stats.shed_total() << " shed\n";
  }

  // Export what the run left behind: the operator's metrics scrape...
  std::cout << "\nmetrics snapshot:\n"
            << obs::MetricsRegistry::global().snapshot_json() << "\n";

  // ...and the flight recording, loadable at https://ui.perfetto.dev.
  const obs::TraceSnapshot snap = obs::TraceCollector::instance().collect();
  std::ofstream out("trace.json");
  obs::TraceCollector::instance().write_chrome_trace(out);
  std::cout << "\nwrote trace.json: " << snap.total_spans() << " spans from "
            << snap.threads.size() << " threads (" << snap.total_dropped()
            << " dropped)\n";
  return 0;
}
