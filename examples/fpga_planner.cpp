// FPGA feasibility planner: the paper's Sec. VI analysis as a tool. Give
// it a probe size, volume and target frame rate; it sizes both delay
// architectures on a device and reports which fits, at what utilization,
// bandwidth and frame rate — the trade Table II captures for the paper's
// design point.
//
// Usage: fpga_planner [elements_per_side] [target_fps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "delay/tablefree.h"
#include "probe/presets.h"
#include "fpga/report.h"
#include "hw/delay_fabric.h"
#include "imaging/scan_order.h"

int main(int argc, char** argv) {
  using namespace us3d;

  const int side = argc > 1 ? std::atoi(argv[1]) : 100;
  const double fps = argc > 2 ? std::atof(argv[2]) : 15.0;
  if (side <= 0 || fps <= 0.0) {
    std::fprintf(stderr, "usage: %s [elements_per_side] [target_fps]\n",
                 argv[0]);
    return 1;
  }

  imaging::SystemConfig cfg = imaging::paper_system();
  cfg.probe = probe::small_probe(side);
  cfg.plan.volume_rate_hz = fps;

  std::printf("planning for a %dx%d probe, %dx%dx%d volume, %.0f fps on "
              "%s\n\n",
              side, side, cfg.volume.n_theta, cfg.volume.n_phi,
              cfg.volume.n_depth, fps, fpga::xc7vx1140t().name.c_str());
  std::printf("delay demand: %.2e coefficients/frame, %.2e/s\n\n",
              static_cast<double>(cfg.delays_per_frame()),
              cfg.delays_per_second());

  // Tracker statistics for the TABLEFREE stall model: contiguous sweep on
  // a scaled stand-in (stall rate is geometry-driven, not size-driven).
  delay::TableFreeEngine::TrackerStats stats;
  {
    const auto scaled = imaging::scaled_system(8, 32, 250);
    delay::TableFreeEngine engine(scaled);
    engine.begin_frame(Vec3{});
    std::vector<std::int32_t> out(
        static_cast<std::size_t>(engine.element_count()));
    const imaging::VolumeGrid grid(scaled.volume);
    imaging::for_each_focal_point(
        grid, imaging::ScanOrder::kNappeByNappe,
        [&](const imaging::FocalPoint& fp) { engine.compute(fp, out); });
    stats = engine.tracker_stats();
  }

  const delay::TableFreeEngine sized(cfg);
  for (const fpga::FpgaDevice& device :
       {fpga::xc7vx1140t(), fpga::ultrascale_projection()}) {
    std::printf("== %s ==\n", device.name.c_str());

    const auto tf = fpga::analyze_tablefree_fpga(
        cfg, device, sized.pwl().segment_count(), stats);
    const bool tf_fits = tf.full_probe_util.fits;
    std::printf("  TABLEFREE : %d units need %.0f%% LUTs -> %s",
                cfg.probe.element_count(),
                tf.full_probe_util.lut_fraction * 100.0,
                tf_fits ? "fits" : "does NOT fit");
    if (!tf_fits) {
      std::printf(" (largest fleet: %dx%d)", tf.max_channels_side,
                  tf.max_channels_side);
    }
    std::printf("; %.1f fps %s target\n", tf.frame_rate,
                tf.frame_rate >= fps ? "meets" : "misses");

    const auto ts_cfg = delay::TableSteerConfig::bits18();
    hw::FabricConfig fabric;
    fabric.entry_format = ts_cfg.entry_format;
    const auto ts =
        fpga::analyze_tablesteer_fpga(cfg, device, fabric, ts_cfg);
    std::printf("  TABLESTEER: LUT %.0f%%, FF %.0f%%, BRAM %.0f%% -> %s; "
                "%.1f fps %s target; %.1f GB/s DRAM\n",
                ts.util.lut_fraction * 100.0, ts.util.ff_fraction * 100.0,
                ts.util.bram_fraction * 100.0,
                ts.util.fits ? "fits" : "does NOT fit",
                ts.fabric.frame_rate_at_peak,
                ts.fabric.frame_rate_at_peak >= fps ? "meets" : "misses",
                ts.fabric.dram_bandwidth_bytes_per_second / 1e9);

    const char* pick =
        ts.util.fits && ts.fabric.frame_rate_at_peak >= fps
            ? (tf_fits && tf.frame_rate >= fps
                   ? "either fits; TABLEFREE if off-chip bandwidth is "
                     "precious, TABLESTEER for frame rate"
                   : "TABLESTEER")
            : (tf_fits && tf.frame_rate >= fps ? "TABLEFREE"
                                               : "neither at full spec");
    std::printf("  recommendation: %s\n\n", pick);
  }
  return 0;
}
