// End-to-end 3D imaging example: synthesize echoes from a multi-target
// phantom, beamform the volume with each delay architecture, and print
// point-spread-function metrics plus an ASCII slice of the reconstruction.
//
// This is the workload the paper's introduction motivates: receive-time
// dynamic focusing of a full 3D volume, where delay generation is the
// bottleneck being engineered.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "acoustic/echo_synth.h"
#include "acoustic/metrics.h"
#include "beamform/beamformer.h"
#include "delay/exact.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "probe/presets.h"

namespace {

using namespace us3d;

/// ASCII rendering of the theta-depth slice through a given phi index.
void print_slice(const beamform::VolumeImage& img, int i_phi) {
  const auto& spec = img.spec();
  float peak = 0.0f;
  for (int it = 0; it < spec.n_theta; ++it) {
    for (int id = 0; id < spec.n_depth; ++id) {
      peak = std::max(peak, std::abs(img.at(it, i_phi, id)));
    }
  }
  static const char* kShades = " .:-=+*#%@";
  std::printf("theta ->\n");
  for (int id = 0; id < spec.n_depth; id += 2) {
    std::string line;
    for (int it = 0; it < spec.n_theta; ++it) {
      const double v = std::abs(img.at(it, i_phi, id)) / peak;
      const double db = 20.0 * std::log10(std::max(1e-6, v));
      const int shade =
          std::clamp(static_cast<int>((db + 40.0) / 40.0 * 9.0), 0, 9);
      line += kShades[shade];
    }
    std::printf("  %s  depth %3d\n", line.c_str(), id);
  }
}

}  // namespace

int main() {
  const imaging::SystemConfig cfg = imaging::scaled_system(16, 25, 120);
  const imaging::VolumeGrid grid(cfg.volume);

  // Three point targets: centre, steered shallow, steered deep.
  const acoustic::Phantom phantom = {
      {grid.focal_point(12, 12, 60).position, 1.0},
      {grid.focal_point(5, 12, 30).position, 0.8},
      {grid.focal_point(20, 12, 95).position, 0.9},
  };
  std::printf("synthesizing echoes for %zu scatterers on a %dx%d probe...\n",
              phantom.size(), cfg.probe.elements_x, cfg.probe.elements_y);
  const auto echoes = acoustic::synthesize_echoes(cfg, phantom);

  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const beamform::Beamformer bf(cfg, apod);

  delay::ExactDelayEngine exact(cfg);
  delay::TableFreeEngine tablefree(cfg);
  delay::TableSteerEngine tablesteer(cfg);

  const beamform::VolumeImage ref = bf.reconstruct(echoes, exact);

  std::printf("\nreconstruction with EXACT delays (phi slice 12, dB scale):\n");
  print_slice(ref, 12);

  std::printf("\n%-16s %12s %12s %14s %12s\n", "engine", "peak voxel",
              "-6dB width", "sidelobe [dB]", "NRMSE");
  for (delay::DelayEngine* engine :
       {static_cast<delay::DelayEngine*>(&exact),
        static_cast<delay::DelayEngine*>(&tablefree),
        static_cast<delay::DelayEngine*>(&tablesteer)}) {
    const beamform::VolumeImage img = bf.reconstruct(echoes, *engine);
    const acoustic::PsfMetrics psf = acoustic::measure_psf(img);
    std::printf("%-16s (%2d,%2d,%3d) %12.2f %14.1f %12.4f\n",
                engine->name().c_str(), psf.peak.i_theta, psf.peak.i_phi,
                psf.peak.i_depth, psf.width_theta,
                20.0 * std::log10(std::max(1e-6, psf.sidelobe_ratio)),
                engine == &exact ? 0.0
                                 : beamform::VolumeImage::nrmse(ref, img));
  }
  std::printf("\nAll three delay architectures localize all targets; the "
              "approximate ones cost\nonly fractions of a percent of NRMSE "
              "— the paper's Sec. II-A claim at image level.\n");
  return 0;
}
