// Multi-session imaging service walkthrough: the scenario catalog as a
// wire format, admission control against a shared budget, priority-based
// worker sharing, load shedding on an overloaded session, and the
// operator's whole-box JSON view.
#include <iostream>
#include <string>
#include <vector>

#include "acoustic/echo_synth.h"
#include "common/prng.h"
#include "service/imaging_service.h"

using namespace us3d;
using runtime::EchoFrame;
using service::ImagingService;
using service::Scenario;
using service::ScenarioCatalog;

namespace {

std::vector<EchoFrame> frames_for(const Scenario& scenario, int count,
                                  std::uint64_t seed) {
  const imaging::SystemConfig cfg = scenario.system();
  const imaging::VolumeGrid grid(cfg.volume);
  SplitMix64 rng(seed);
  const std::vector<Vec3> origins = scenario.origins(count);
  std::vector<EchoFrame> frames;
  for (int i = 0; i < count; ++i) {
    const acoustic::Phantom phantom{acoustic::PointScatterer{
        grid.focal_point(static_cast<int>(rng.next_below(
                             static_cast<std::uint64_t>(cfg.volume.n_theta))),
                         cfg.volume.n_phi / 2, cfg.volume.n_depth / 2)
            .position,
        1.0}};
    acoustic::SynthesisOptions synth;
    synth.origin = origins[static_cast<std::size_t>(i)];
    frames.push_back(EchoFrame{acoustic::synthesize_echoes(cfg, phantom, synth),
                               origins[static_cast<std::size_t>(i)], i});
  }
  return frames;
}

}  // namespace

int main() {
  // --- The catalog is the service's menu (and its wire format). --------
  const ScenarioCatalog catalog = ScenarioCatalog::builtin();
  std::cout << "built-in scenarios:\n";
  for (const Scenario& s : catalog.scenarios()) {
    std::cout << "  " << s.name << "  (engine "
              << service::family_name(s.engine) << ", K="
              << s.compound_origins << ")\n";
  }
  // A client-side descriptor round-trips through JSON — what a network
  // front-end would POST.
  Scenario live = *catalog.find("tablefree-interactive");
  live.probe_elements = 6;
  live.n_lines = 8;
  live.n_depth = 24;
  const Scenario parsed = Scenario::from_json(live.to_json());
  std::cout << "\nwire round-trip: " << parsed.to_json() << "\n\n";

  // --- Admission against a shared budget. ------------------------------
  ImagingService service(service::ServiceBudget{.worker_threads = 4,
                                                .inflight_volumes = 4});
  Scenario batch = *catalog.find("tablesteer-cardiac-18b");
  batch.probe_elements = 6;
  batch.n_lines = 8;
  batch.n_depth = 24;
  batch.worker_threads = 4;  // wants everything; priority says otherwise

  const auto live_adm = service.open_session(
      parsed, {.priority = service::PriorityClass::kInteractive,
               .policy = service::ShedPolicy::kAdaptiveDepth});
  const auto batch_adm = service.open_session(
      batch, {.priority = service::PriorityClass::kBulk,
              .policy = service::ShedPolicy::kDropOldest});
  std::cout << "admitted live session #" << live_adm.session << " ("
            << live_adm.granted_workers << " workers), batch session #"
            << batch_adm.session << " ("
            << service.granted_workers(batch_adm.session) << " worker)\n";
  // A third session bounces off the in-flight volume budget (both open
  // sessions hold two ring slots each) — refused cleanly, with a reason.
  Scenario greedy = parsed;
  greedy.name = "one-too-many";
  const auto refused = service.open_session(greedy);
  std::cout << "third session admitted? " << (refused.admitted ? "yes" : "no")
            << " — " << refused.reason << "\n\n";

  // --- Stream: the live session floods, the batch session is polite. ---
  auto live_frames = frames_for(parsed, 10, 1);
  auto batch_frames = frames_for(batch, 4, 2);
  int live_delivered = 0, batch_delivered = 0;
  const runtime::VolumeSink live_sink =
      [&](const beamform::VolumeImage&, std::int64_t) { ++live_delivered; };
  const runtime::VolumeSink batch_sink =
      [&](const beamform::VolumeImage&, std::int64_t) { ++batch_delivered; };
  for (EchoFrame& f : live_frames) {
    service.submit(live_adm.session, std::move(f));  // burst, no polling
  }
  for (EchoFrame& f : batch_frames) {
    service.submit(batch_adm.session, std::move(f));
    service.poll(batch_adm.session, batch_sink);
  }

  const auto live_stats = service.close_session(live_adm.session, live_sink);
  const auto batch_stats =
      service.close_session(batch_adm.session, batch_sink);
  std::cout << "live session: " << live_stats.submitted << " submitted, "
            << live_delivered << " delivered, " << live_stats.shed_adaptive
            << " shed by adaptive depth (depth ended at "
            << live_stats.effective_depth << "/" << live_stats.granted_depth
            << ")\n";
  std::cout << "batch session: " << batch_stats.submitted << " submitted, "
            << batch_delivered << " delivered, " << batch_stats.shed_total()
            << " shed\n\n";

  // --- The operator's whole-box view. -----------------------------------
  std::cout << "service stats JSON:\n" << service.stats().to_json() << "\n";
  return 0;
}
