// Storage-accounting walkthrough: how the paper shrinks "billions of
// coefficients" down to something a single chip can hold. Each step prints
// the size after applying one idea from the paper, for any system size.
//
// Usage: table_compression [elements_per_side] [n_lines] [n_depth]
#include <cstdio>
#include <cstdlib>

#include "delay/pwl_sqrt.h"
#include "delay/table_sizing.h"
#include "delay/tablefree.h"
#include "imaging/system_config.h"

int main(int argc, char** argv) {
  using namespace us3d;

  imaging::SystemConfig cfg;
  if (argc == 4) {
    cfg = imaging::scaled_system(std::atoi(argv[1]), std::atoi(argv[2]),
                                 std::atoi(argv[3]));
  } else {
    cfg = imaging::paper_system();
  }

  std::printf("system: %dx%d elements, %dx%dx%d focal points\n\n",
              cfg.probe.elements_x, cfg.probe.elements_y, cfg.volume.n_theta,
              cfg.volume.n_phi, cfg.volume.n_depth);

  const int bits = cfg.delay_index_bits();
  const auto naive = delay::naive_table_sizing(cfg, bits);
  std::printf("step 0 — naive table, one %d-bit delay per (point, element):\n"
              "         %.3e coefficients = %.2f GB, %.2f GB/s at %.0f fps\n\n",
              bits, static_cast<double>(naive.coefficients),
              naive.total_bytes / 1e9,
              naive.bandwidth_bytes_per_second / 1e9,
              cfg.plan.volume_rate_hz);

  const auto ref = delay::reference_table_sizing(cfg, fx::kRefDelay18);
  std::printf("step 1 — TABLESTEER: store only the unsteered line of sight\n"
              "         (one entry per element x depth): %.3e entries\n",
              static_cast<double>(ref.raw_entries));
  std::printf("step 2 — fold X/Y mirror symmetry: %.3e entries = %.1f Mb "
              "at 18 bits\n",
              static_cast<double>(ref.folded_entries),
              ref.folded_bits / 1e6);

  const auto steer = delay::steering_set_sizing(cfg, fx::kCorrection18);
  std::printf("step 3 — precompute the steering planes: +%lld coefficients "
              "= %.1f Mb\n",
              static_cast<long long>(steer.total_coefficients),
              steer.total_bits / 1e6);

  const auto stream = delay::streaming_sizing(cfg, fx::kRefDelay18,
                                              fx::kCorrection18, 128, 1024);
  std::printf("step 4 — stream the table from DRAM, keep a slice on chip:\n"
              "         %.2f Mb of BRAM + %.2f GB/s of unidirectional DRAM "
              "traffic\n\n",
              stream.on_chip_slice_bits / 1e6,
              stream.bandwidth_bytes_per_second / 1e9);

  const delay::TableFreeEngine tablefree(cfg);
  const delay::FixedPwlSqrt fixed(tablefree.pwl(),
                                  delay::FixedPwlSqrt::Config{});
  std::printf("step 5 — TABLEFREE: drop the table entirely; per element "
              "unit stores only\n"
              "         the %zu-segment PWL sqrt LUT = %.1f kb (and %.1f Mb "
              "for all %d units)\n",
              tablefree.pwl().segment_count(), fixed.lut_bits() / 1e3,
              fixed.lut_bits() * cfg.probe.element_count() / 1e6,
              cfg.probe.element_count());

  const double compression =
      naive.total_bits / (ref.folded_bits + steer.total_bits);
  std::printf("\nnet effect: %.0fx smaller than the naive table "
              "(TABLESTEER), or no table at all\n(TABLEFREE), at the "
              "accuracy cost quantified in bench_e6/e7.\n",
              compression);
  return 0;
}
