// Streaming-runtime quickstart: synthesize a short shot sequence, wrap it
// in the DRAM-ingest model, and beamform it through the multi-threaded
// FramePipeline with a TABLEFREE engine cloned per worker. Prints the
// per-stage PipelineStats and the ingest feasibility report.
#include <iostream>

#include "acoustic/echo_synth.h"
#include "delay/tablefree.h"
#include "runtime/frame_pipeline.h"

int main() {
  using namespace us3d;

  const imaging::SystemConfig cfg = imaging::scaled_system(10, 16, 80);
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{
      acoustic::PointScatterer{grid.focal_point(8, 8, 40).position, 1.0}};

  // Four identical insonifications stand in for a live acquisition.
  std::vector<runtime::EchoFrame> frames(
      4, runtime::EchoFrame{acoustic::synthesize_echoes(cfg, phantom),
                            Vec3{}, 0});
  runtime::ReplayFrameSource replay(frames);

  // Model the echo front-end: a 2k-word buffer refilled at 1 GB/s while
  // the beamformer drains one word per cycle at 100 MHz (= 400 MB/s).
  hw::StreamBufferConfig ingest;
  ingest.capacity_words = 2048;
  ingest.clock_hz = 100.0e6;
  ingest.dram_bandwidth_bytes_per_s = 1.0e9;
  ingest.word_bits = 32;
  ingest.drain_words_per_cycle = 1.0;
  ingest.initial_fill_words = 256;
  runtime::StreamedFrameSource source(replay, ingest);

  delay::TableFreeEngine prototype(cfg);
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kHann);
  runtime::FramePipeline pipeline(
      cfg, apod, prototype,
      runtime::PipelineConfig{.worker_threads = 4});

  std::cout << "engine: " << pipeline.engine_name() << ", "
            << pipeline.worker_threads() << " workers over "
            << pipeline.ranges().size() << " nappe ranges\n\n";

  const runtime::PipelineStats stats = pipeline.run(
      source, [](const beamform::VolumeImage& volume, std::int64_t seq) {
        const auto peak = volume.peak_abs();
        std::cout << "frame " << seq << ": peak " << peak.value << " at ("
                  << peak.i_theta << "," << peak.i_phi << "," << peak.i_depth
                  << ")\n";
      });

  std::cout << '\n' << stats.to_string();
  const runtime::IngestModelReport& ingest_report = source.report();
  std::cout << "\ningest model: "
            << (ingest_report.feasible() ? "feasible" : "UNDERRUNS") << ", "
            << ingest_report.frames << " frames, min margin "
            << ingest_report.min_margin_cycles << " cycles\n";
  return 0;
}
