// Streaming-runtime quickstart, in two acts:
//
//  1) The synchronous wrapper: synthesize a diverging-wave shot sequence,
//     wrap it in the DRAM-ingest model with WALL-CLOCK pacing (frames
//     arrive at the modeled acquisition rate, not as fast as memcpy), and
//     run it through FramePipeline::run with 4-origin compounding — every
//     delivered volume is the coherent sum of one full synthetic-aperture
//     cycle.
//
//  2) The async core itself: an acquisition-style loop that try_submit()s
//     frames (non-blocking backpressure) and poll()s finished volumes off
//     the bounded pipeline, the way a live front-end would.
#include <iostream>
#include <vector>

#include "acoustic/echo_synth.h"
#include "delay/synthetic_aperture.h"
#include "delay/tablefree.h"
#include "runtime/async_pipeline.h"
#include "runtime/frame_pipeline.h"

int main() {
  using namespace us3d;

  const imaging::SystemConfig cfg = imaging::scaled_system(10, 16, 80);
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom{
      acoustic::PointScatterer{grid.focal_point(8, 8, 40).position, 1.0}};
  const probe::ApodizationMap apod(probe::MatrixProbe(cfg.probe),
                                   probe::WindowKind::kHann);

  // --- Act 1: paced ingest + compounding through the sync wrapper -------
  const delay::SyntheticAperturePlan plan = delay::diverging_wave_plan(4, 3e-3);
  std::vector<runtime::EchoFrame> frames;
  for (int shot = 0; shot < 8; ++shot) {
    const Vec3 origin{0.0, 0.0,
                      plan.origin_z[static_cast<std::size_t>(shot % 4)]};
    acoustic::SynthesisOptions synth;
    synth.origin = origin;
    frames.push_back(runtime::EchoFrame{
        acoustic::synthesize_echoes(cfg, phantom, synth), origin, shot});
  }
  runtime::ReplayFrameSource replay(frames);

  // Model the echo front-end: a 2k-word buffer refilled at 1 GB/s while
  // the beamformer drains one word per cycle at 100 MHz. kWallClock makes
  // next_frame() hold deliveries to that modeled acquisition rate.
  hw::StreamBufferConfig ingest;
  ingest.capacity_words = 2048;
  ingest.clock_hz = 100.0e6;
  ingest.dram_bandwidth_bytes_per_s = 1.0e9;
  ingest.word_bits = 32;
  ingest.drain_words_per_cycle = 1.0;
  ingest.initial_fill_words = 256;
  runtime::StreamedFrameSource source(replay, ingest,
                                      runtime::IngestPacing::kWallClock);

  delay::SyntheticApertureSteerEngine sa_prototype(cfg, plan);
  runtime::FramePipeline pipeline(
      cfg, apod, sa_prototype,
      runtime::PipelineConfig{.worker_threads = 4,
                              .queue_depth = 3,
                              .compound_origins = 4});

  std::cout << "engine: " << pipeline.engine_name() << ", "
            << pipeline.worker_threads() << " workers over "
            << pipeline.ranges().size() << " nappe ranges, compounding "
            << 4 << " origins per volume\n\n";

  const runtime::PipelineStats stats = pipeline.run(
      source, [](const beamform::VolumeImage& volume, std::int64_t seq) {
        const auto peak = volume.peak_abs();
        std::cout << "compound volume (through shot " << seq << "): peak "
                  << peak.value << " at (" << peak.i_theta << ","
                  << peak.i_phi << "," << peak.i_depth << ")\n";
      });

  std::cout << '\n' << stats.to_string();
  const runtime::IngestModelReport& report = source.report();
  std::cout << "\ningest model: "
            << (report.feasible() ? "feasible" : "UNDERRUNS") << ", "
            << report.frames << " frames, modeled acquisition "
            << report.modeled_ingest_s * 1e3 << " ms, paced wait "
            << report.paced_wait_s * 1e3 << " ms\n";

  // --- Act 2: the async core, acquisition-front-end style --------------
  std::cout << "\n--- async submit/poll (non-blocking backpressure) ---\n";
  delay::TableFreeEngine tf_prototype(cfg);
  runtime::FramePipeline async_host(
      cfg, apod, tf_prototype, runtime::PipelineConfig{.worker_threads = 4});
  runtime::AsyncPipeline async(async_host,
                               runtime::AsyncOptions{.depth = 2});
  int delivered = 0;
  const runtime::VolumeSink sink = [&](const beamform::VolumeImage&,
                                       std::int64_t seq) {
    std::cout << "  delivered volume " << seq << "\n";
    ++delivered;
  };
  int refusals = 0;
  for (runtime::EchoFrame& f : frames) {
    f.origin = Vec3{};  // TABLEFREE run: centred origin
    while (!async.try_submit(f)) {
      ++refusals;  // queue full: a live front-end would shed or buffer;
      if (!async.wait_one(sink)) break;  // we drain one volume instead —
    }                                    // false means pipeline failure
    if (async.failed()) break;
    (void)async.poll(sink);  // opportunistic, never blocks
  }
  const runtime::PipelineStats async_stats = async.finish(sink);
  async.rethrow_if_failed();
  std::cout << "submitted " << async_stats.insonifications << ", delivered "
            << delivered << ", backpressure refusals " << refusals << ", "
            << async_stats.sustained_fps() << " fps sustained\n";
  return 0;
}
