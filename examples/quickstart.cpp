// Quickstart: compute receive-beamforming delays three ways — exact, the
// paper's TABLEFREE architecture, and the paper's TABLESTEER architecture —
// and compare them for one focal point.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/angles.h"
#include "delay/exact.h"
#include "delay/tablefree.h"
#include "delay/tablesteer.h"
#include "imaging/system_config.h"

int main() {
  using namespace us3d;

  // A scaled-down system (16x16 probe, 24x24x200 focal grid) with the same
  // physics as the paper's Table I system; imaging::paper_system() gives
  // the full 100x100 / 128x128x1000 configuration.
  const imaging::SystemConfig cfg = imaging::scaled_system(16, 24, 200);
  std::printf("system: %dx%d probe, %dx%dx%d focal points, fs = %.0f MHz\n",
              cfg.probe.elements_x, cfg.probe.elements_y, cfg.volume.n_theta,
              cfg.volume.n_phi, cfg.volume.n_depth,
              cfg.sampling_frequency_hz / 1e6);

  // Delay engines share one interface; all produce echo-buffer sample
  // indices for every element of the probe.
  delay::ExactDelayEngine exact(cfg);
  delay::TableFreeEngine tablefree(cfg);
  delay::TableSteerEngine tablesteer(cfg);

  // Pick a steered focal point: 12 degrees azimuth, -6 degrees elevation,
  // three quarters of the way down the depth range.
  const imaging::VolumeGrid grid(cfg.volume);
  const imaging::FocalPoint fp = grid.focal_point(19, 8, 150);
  std::printf("focal point: theta %.1f deg, phi %.1f deg, r %.1f mm\n\n",
              rad_to_deg(fp.theta), rad_to_deg(fp.phi), fp.radius * 1e3);

  const auto n = static_cast<std::size_t>(exact.element_count());
  std::vector<std::int32_t> d_exact(n), d_free(n), d_steer(n);
  for (delay::DelayEngine* e :
       {static_cast<delay::DelayEngine*>(&exact),
        static_cast<delay::DelayEngine*>(&tablefree),
        static_cast<delay::DelayEngine*>(&tablesteer)}) {
    e->begin_frame(Vec3{});  // transmit origin at the probe centre
  }
  exact.compute(fp, d_exact);
  tablefree.compute(fp, d_free);
  tablesteer.compute(fp, d_steer);

  std::printf("%-28s %8s %10s %11s\n", "element", "exact", "TABLEFREE",
              "TABLESTEER");
  const probe::MatrixProbe probe(cfg.probe);
  for (int e = 0; e < exact.element_count(); e += 37) {
    const Vec3 pos = probe.element_position(e);
    std::printf("(%+5.2f, %+5.2f) mm            %8d %10d %11d\n",
                pos.x * 1e3, pos.y * 1e3, d_exact[static_cast<std::size_t>(e)],
                d_free[static_cast<std::size_t>(e)],
                d_steer[static_cast<std::size_t>(e)]);
  }

  // Summary statistics across the whole aperture.
  int worst_free = 0, worst_steer = 0;
  long sum_free = 0, sum_steer = 0;
  for (std::size_t e = 0; e < n; ++e) {
    const int ef = std::abs(d_free[e] - d_exact[e]);
    const int es = std::abs(d_steer[e] - d_exact[e]);
    worst_free = std::max(worst_free, ef);
    worst_steer = std::max(worst_steer, es);
    sum_free += ef;
    sum_steer += es;
  }
  std::printf(
      "\nTABLEFREE : mean |err| %.3f samples, max %d (PWL sqrt, no table)\n",
      static_cast<double>(sum_free) / static_cast<double>(n), worst_free);
  std::printf(
      "TABLESTEER: mean |err| %.3f samples, max %d (2.5e%.0f-entry table + "
      "steering)\n",
      static_cast<double>(sum_steer) / static_cast<double>(n), worst_steer,
      std::log10(static_cast<double>(
          tablesteer.reference_table().entry_count())));
  std::printf("\nSee bench/ for the full reproduction of the paper's "
              "tables and figures.\n");
  return 0;
}
