// Synthetic-aperture imaging example: reconstruct one volume from several
// diverging-wave insonifications (virtual sources behind the probe),
// compounding the per-shot reconstructions — the acquisition mode the
// paper's Sec. V extension supports through a repository of delay tables.
#include <cmath>
#include <cstdio>
#include <vector>

#include "acoustic/echo_synth.h"
#include "acoustic/metrics.h"
#include "beamform/beamformer.h"
#include "delay/synthetic_aperture.h"
#include "probe/presets.h"

int main() {
  using namespace us3d;

  const imaging::SystemConfig cfg = imaging::scaled_system(12, 17, 80);
  const imaging::VolumeGrid grid(cfg.volume);
  const acoustic::Phantom phantom = {
      {grid.focal_point(8, 8, 40).position, 1.0},
      {grid.focal_point(13, 5, 60).position, 0.8},
  };

  // Three diverging-wave shots from virtual sources 0..8 lambda behind
  // the probe; the engine owns one reference table per source.
  const auto plan =
      delay::diverging_wave_plan(3, 8.0 * cfg.wavelength_m());
  delay::SyntheticApertureSteerEngine engine(cfg, plan);
  std::printf("synthetic aperture: %d virtual sources, repository %.1f Mb "
              "(DRAM-resident)\n\n",
              plan.origin_count(),
              engine.repository().total_storage_bits() / 1e6);

  const probe::MatrixProbe probe(cfg.probe);
  const probe::ApodizationMap apod(probe, probe::WindowKind::kHann);
  const beamform::Beamformer bf(cfg, apod);

  beamform::VolumeImage compound(cfg.volume);
  for (int shot = 0; shot < plan.origin_count(); ++shot) {
    const Vec3 origin{0.0, 0.0, plan.origin_z[static_cast<std::size_t>(shot)]};
    acoustic::SynthesisOptions opt;
    opt.origin = origin;
    const auto echoes = acoustic::synthesize_echoes(cfg, phantom, opt);

    const beamform::VolumeImage img =
        bf.reconstruct(echoes, engine, {.origin = origin});
    const auto psf = acoustic::measure_psf(img);
    std::printf("shot %d (source z = %+5.2f mm): peak at (%d,%d,%d), "
                "amplitude %.3f\n",
                shot, origin.z * 1e3, psf.peak.i_theta, psf.peak.i_phi,
                psf.peak.i_depth, std::abs(psf.peak.value));

    for (int it = 0; it < cfg.volume.n_theta; ++it) {
      for (int ip = 0; ip < cfg.volume.n_phi; ++ip) {
        for (int id = 0; id < cfg.volume.n_depth; ++id) {
          compound.at(it, ip, id) +=
              img.at(it, ip, id) /
              static_cast<float>(plan.origin_count());
        }
      }
    }
  }

  const auto psf = acoustic::measure_psf(compound);
  std::printf("\ncompounded volume: peak at (%d,%d,%d), amplitude %.3f, "
              "-6dB widths %.1f/%.1f/%.1f\n",
              psf.peak.i_theta, psf.peak.i_phi, psf.peak.i_depth,
              std::abs(psf.peak.value), psf.width_theta, psf.width_phi,
              psf.width_depth);
  std::printf("\nEach shot used its own origin's reference table; the "
              "steering-correction set is\nshared — exactly the 'multiple "
              "precalculated delay tables' deployment of Sec. V.\n");
  return 0;
}
