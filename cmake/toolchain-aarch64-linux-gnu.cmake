# Cross-compile us3d for aarch64-linux-gnu and run the resulting binaries
# under qemu-user. One entry point shared by the CI lane and local
# cross-builds:
#
#   sudo apt install g++-aarch64-linux-gnu qemu-user libgtest-dev
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchain-aarch64-linux-gnu.cmake \
#     -DCMAKE_BUILD_TYPE=Release
#   cmake --build build-aarch64 -j
#   ctest --test-dir build-aarch64 -L tier1 --output-on-failure -j
#
# CMAKE_CROSSCOMPILING_EMULATOR makes ctest (and try_run) launch every
# cross binary through qemu-aarch64 transparently — no binfmt_misc setup
# required; -L points qemu at the cross glibc so dynamic binaries load.
# Benches run the same way by hand:
#   qemu-aarch64 -L /usr/aarch64-linux-gnu build-aarch64/bench_a11_block_kernel --tiny

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# Search target sysroots for libraries/headers/packages, never the host's
# (this is what keeps find_package(GTest) from handing the cross build an
# x86 archive — CMakeLists falls back to building googletest from source).
# Programs (python3, clang-tidy, ...) still come from the host.
set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)

find_program(US3D_QEMU_AARCH64 NAMES qemu-aarch64 qemu-aarch64-static)
if(US3D_QEMU_AARCH64)
  set(CMAKE_CROSSCOMPILING_EMULATOR
      "${US3D_QEMU_AARCH64};-L;/usr/aarch64-linux-gnu")
else()
  message(WARNING "qemu-aarch64 not found: the build will cross-compile "
                  "but ctest cannot execute the aarch64 binaries")
endif()
