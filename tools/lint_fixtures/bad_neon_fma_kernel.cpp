// Lint fixture: NEON fused / chained multiply-add mnemonics that must
// never appear in a DAS kernel TU. vfma* rounds once where the double
// contract requires the two-rounding `acc += w * gather` sequence shared
// by every backend; vmla*/vmlal* chain the accumulate into the multiply,
// which skips the arithmetic shift the quantized integer contract places
// between them. (Never compiled — scanned as text by lint_us3d.py's
// self-test, so the aarch64-only header is fine here.)
#include <arm_neon.h>

float64x2_t bad_neon_fma_fixtures(float64x2_t acc, float64x2_t w,
                                  float64x2_t g, float32x4_t fa,
                                  float32x4_t fb, float32x4_t fc,
                                  int32x4_t qacc, int16x4_t qs,
                                  int16x4_t qw) {
  acc = vfmaq_f64(acc, w, g);        // AArch64 fused multiply-add
  acc = vfmaq_laneq_f64(acc, w, g, 0);  // lane-broadcast fused form
  fa = vmlaq_f32(fa, fb, fc);        // chained multiply-accumulate
  qacc = vmlal_s16(qacc, qs, qw);    // widening mul-acc skips the shift
  return vaddq_f64(acc, vcvt_f64_f32(vget_low_f32(fa)));
}
