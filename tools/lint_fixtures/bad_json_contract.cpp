// Lint fixture: a to_json / from_json pair whose emitter writes a key the
// strict reader never parses. The readers reject unknown fields, so this
// document cannot round-trip through its own parser.
#include <string>

struct Widget {
  int size = 0;
  int colour = 0;
  std::string to_json() const;
  static Widget from_json(const std::string& json);
};

std::string Widget::to_json() const {
  JsonWriter w;
  w.begin_object()
      .kv("size", size)
      .kv("colour", colour)  // emitted but never parsed below
      .end_object();
  return w.str();
}

Widget Widget::from_json(const std::string& json) {
  Widget out;
  for (const auto& [key, value] : parse_json(json).members()) {
    if (key == "size") {
      out.size = value.as_int(key);
    } else {
      throw std::runtime_error("unknown field " + key);
    }
  }
  return out;
}
