// Lint fixture: every way an event macro can violate the literal-name
// contract. EventRecord stores `const char*` without copying, so a
// runtime string here would dangle by the time the flight recorder reads
// the ring.
#include <string>

void bad_event_fixtures(const std::string& reason, int session, int seq) {
  US3D_EVENT_WARN(reason.c_str(), session, seq);            // name not literal
  US3D_EVENT_ERROR(("svc." + reason).c_str());              // computed name
  US3D_EVENT_INFO("ok.name", session, seq, nullptr,
                  reason.c_str(), 3);                       // key not literal
  US3D_EVENT_DEBUG("ok.name", session, seq, nullptr,
                   "depth", 2, reason.c_str(), 4);          // second key too
  US3D_EVENT_WARN("ok.name", session, seq, nullptr,
                  "depth");                                 // key, no value
}
