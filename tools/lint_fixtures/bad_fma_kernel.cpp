// Lint fixture: fused multiply-add spellings that must never appear in a
// DAS kernel TU. Each rounds once where the contract requires the
// two-rounding `acc += w * gather` sequence shared by every backend.
#include <cmath>
#include <immintrin.h>

float bad_fma_fixtures(float acc, float w, float g, __m256 va, __m256 vb,
                       __m256 vc) {
  acc = std::fma(w, g, acc);                 // libm fused form
  acc = fmaf(w, g, acc);                     // C spelling
  acc = __builtin_fma(w, g, acc);            // builtin spelling
  va = _mm256_fmadd_ps(vb, vc, va);          // AVX2 intrinsic
  va = _mm256_fnmadd_ps(vb, vc, va);         // negated fused form
  return acc + va[0];
}
