// Lint fixture: every way a trace macro can violate the literal-name
// contract. The spans store `const char*` without copying, so a runtime
// string here would dangle.
#include <string>

void bad_trace_fixtures(const std::string& stage, int seq) {
  US3D_TRACE_SPAN(stage.c_str(), "sequence", seq);   // name not a literal
  US3D_TRACE_INSTANT(("prefix" + stage).c_str());    // computed name
  US3D_TRACE_SPAN("ok.name", stage.c_str(), seq);    // key not a literal
  US3D_TRACE_SPAN("ok.name", "sequence");            // dangling key, no value
}
