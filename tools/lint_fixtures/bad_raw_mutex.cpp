// Lint fixture: raw standard-library synchronisation primitives that are
// invisible to Clang's -Wthread-safety analysis. Production code must go
// through the annotated us3d::Mutex wrappers instead.
#include <condition_variable>
#include <mutex>

struct BadRawMutexFixture {
  void touch() {
    std::lock_guard<std::mutex> lock(mutex_);  // unannotated acquisition
    ++value_;
  }
  void wait_for_value() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return value_ > 0; });
  }
  std::mutex mutex_;            // raw capability, no GUARDED_BY possible
  std::condition_variable cv_;  // pairs only with the raw mutex
  int value_ = 0;
};
