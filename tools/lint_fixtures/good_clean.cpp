// Lint fixture: code that satisfies all five checks — literal trace and
// event names and keys (an event's detail argument may be a static
// non-literal expression), no fused multiply-add (comments and strings
// mentioning std::fma or _mm256_fmadd_ps must NOT trip the token scan),
// locking via the annotated wrappers, and a to_json whose keys all
// round-trip.
#include <string>

#include "common/annotated_mutex.h"

struct GoodWidget {
  int size = 0;
  std::string to_json() const;
  static GoodWidget from_json(const std::string& json);

  mutable us3d::Mutex mutex_;
  int guarded_value_ = 0;
};

float clean_kernel(float acc, float w, float g) {
  const char* note = "std::fma is banned; so is _mm256_fmadd_ps";
  (void)note;
  US3D_TRACE_SPAN("kernel.accumulate", "width", 8);
  acc += w * g;  // the contract: multiply, round, add, round
  return acc;
}

void clean_locking(GoodWidget& widget) {
  us3d::MutexLock lock(widget.mutex_);
  ++widget.guarded_value_;
  US3D_TRACE_INSTANT("widget.touched");
}

const char* policy_name(int policy) { return policy == 0 ? "drop" : "keep"; }

void clean_events(int session, int seq, int policy, int depth) {
  US3D_EVENT_INFO("widget.admit");
  US3D_EVENT_WARN("widget.shed", session, seq, policy_name(policy),
                  "depth", depth, "seq", seq);
  US3D_EVENT_ERROR("widget.failed", session, -1,
                   policy == 0 ? "sink" : "worker");
}

std::string GoodWidget::to_json() const {
  JsonWriter w;
  w.begin_object().kv("size", size).end_object();
  return w.str();
}

GoodWidget GoodWidget::from_json(const std::string& json) {
  GoodWidget out;
  for (const auto& [key, value] : parse_json(json).members()) {
    if (key == "size") {
      out.size = value.as_int(key);
    } else {
      throw std::runtime_error("unknown field " + key);
    }
  }
  return out;
}
