#!/usr/bin/env python3
"""House lint for the us3d codebase. Stdlib-only, no third-party deps.

Five checks, each enforcing an invariant the compilers cannot:

  trace-literal   US3D_TRACE_SPAN / US3D_TRACE_INSTANT store their name
                  and key arguments as `const char*` without copying
                  (obs::SpanRecord), so the name (arg 0) and every key
                  (odd args) MUST be string literals with static storage,
                  and arguments must come in name + (key, value) pairs.

  event-literal   US3D_EVENT_DEBUG/INFO/WARN/ERROR store their name and
                  argument keys as `const char*` without copying
                  (obs::EventRecord), so the name (arg 0) and the two
                  optional argument keys (args 4 and 6) MUST be string
                  literals. The detail string (arg 3) only needs static
                  storage — expressions like policy_name(p) are fine —
                  but the arity must match the emit_event signature:
                  name, then optionally session, sequence, detail and up
                  to two (key, value) pairs.

  no-fma          DAS kernel translation units must not contract
                  multiply-add: bit-exactness across scalar / SSE2 /
                  AVX2 / AVX-512 / NEON backends depends on every
                  backend computing `acc += w * gather` with the same
                  two-rounding sequence. std::fma and FMA intrinsics
                  round once and would fork the backends' results. The
                  ban covers the x86 _mm*fmadd/fnmadd families AND the
                  NEON vfma*/vmla*/vmlal* mnemonics (the latter also
                  chain the accumulate past the quantized contract's
                  interleaved arithmetic shift).

  no-raw-mutex    src/ code must lock through us3d::Mutex / MutexLock /
                  CondVar (common/annotated_mutex.h) so Clang's
                  -Wthread-safety analysis sees every acquisition. Raw
                  std::mutex & friends are invisible to the analysis.

  json-contract   Any file that defines both a to_json emitter and a
                  strict from_json reader must parse every key it emits:
                  the readers reject unknown fields, so an emitted key
                  missing from the reader breaks round-tripping.

Usage:
  python3 tools/lint_us3d.py [--root DIR]   # lint the repo, exit 1 on findings
  python3 tools/lint_us3d.py --self-test    # run the checks on the fixtures
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------------
# Source text preparation


def strip_comments(text):
    """Remove // and /* */ comments, preserving line structure and strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i : i + 2])
                    i += 2
                    continue
                out.append(text[i])
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_strings(text):
    """Empty out string/char literal bodies (quotes stay), keep lines."""

    def blank(match):
        return '""'

    # Handles escaped quotes; multi-line raw strings are not used in-tree.
    text = re.sub(r'"(?:[^"\\\n]|\\.)*"', blank, text)
    text = re.sub(r"'(?:[^'\\\n]|\\.)*'", "''", text)
    return text


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Check 1: trace macro arguments

TRACE_MACRO = re.compile(r"\bUS3D_TRACE_(?:SPAN|INSTANT)\s*\(")


def split_macro_args(text, open_paren):
    """Split the balanced argument list starting after `(` at open_paren.

    Returns (args, end_index) or (None, open_paren) when unbalanced.
    """
    args, depth, i, n = [], 1, open_paren + 1, len(text)
    current = []
    while i < n and depth > 0:
        c = text[i]
        if c == '"' or c == "'":
            quote = c
            current.append(c)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    current.append(text[i : i + 2])
                    i += 2
                    continue
                current.append(text[i])
                i += 1
            if i < n:
                current.append(quote)
                i += 1
            continue
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(current).strip())
                return args, i
        elif c == "," and depth == 1:
            args.append("".join(current).strip())
            current = []
            i += 1
            continue
        current.append(c)
        i += 1
    return None, open_paren


def check_trace_literals(path, text):
    findings = []
    clean = strip_comments(text)
    for match in TRACE_MACRO.finditer(clean):
        line = line_of(clean, match.start())
        # The macro definitions themselves (#define US3D_TRACE_SPAN(...))
        # are not call sites.
        line_start = clean.rfind("\n", 0, match.start()) + 1
        if clean[line_start : match.start()].lstrip().startswith("#"):
            continue
        args, _ = split_macro_args(clean, match.end() - 1)
        if args is None:
            findings.append((path, line, "unbalanced trace macro arguments"))
            continue
        if not args or not args[0]:
            findings.append((path, line, "trace macro needs a name argument"))
            continue
        if not args[0].startswith('"'):
            findings.append(
                (path, line,
                 "trace name must be a string literal, got `%s` "
                 "(SpanRecord keeps the pointer, not a copy)" % args[0]))
        if len(args) % 2 == 0:
            findings.append(
                (path, line,
                 "trace macro takes a name plus (key, value) pairs; got %d "
                 "arguments" % len(args)))
        for k in range(1, len(args), 2):
            if not args[k].startswith('"'):
                findings.append(
                    (path, line,
                     "trace key %d must be a string literal, got `%s`" %
                     (k, args[k])))
    return findings


# --------------------------------------------------------------------------
# Check 2: event macro arguments

EVENT_MACRO = re.compile(r"\bUS3D_EVENT_(?:DEBUG|INFO|WARN|ERROR)\s*\(")

# Argument positions after the severity is folded into the macro name:
# 0 name, 1 session, 2 sequence, 3 detail, 4 key1, 5 val1, 6 key2, 7 val2.
EVENT_KEY_POSITIONS = (4, 6)
EVENT_VALID_ARITIES = (1, 2, 3, 4, 6, 8)


def check_event_literals(path, text):
    findings = []
    clean = strip_comments(text)
    for match in EVENT_MACRO.finditer(clean):
        line = line_of(clean, match.start())
        # The macro definitions themselves (#define US3D_EVENT_WARN(...))
        # are not call sites.
        line_start = clean.rfind("\n", 0, match.start()) + 1
        if clean[line_start : match.start()].lstrip().startswith("#"):
            continue
        args, _ = split_macro_args(clean, match.end() - 1)
        if args is None:
            findings.append((path, line, "unbalanced event macro arguments"))
            continue
        if not args or not args[0]:
            findings.append((path, line, "event macro needs a name argument"))
            continue
        if not args[0].startswith('"'):
            findings.append(
                (path, line,
                 "event name must be a string literal, got `%s` "
                 "(EventRecord keeps the pointer, not a copy)" % args[0]))
        if len(args) not in EVENT_VALID_ARITIES:
            findings.append(
                (path, line,
                 "event macro takes name[, session[, sequence[, detail"
                 "[, key, value[, key, value]]]]]; got %d arguments" %
                 len(args)))
        for k in EVENT_KEY_POSITIONS:
            if k < len(args) and not args[k].startswith('"'):
                findings.append(
                    (path, line,
                     "event argument key %d must be a string literal, "
                     "got `%s`" % (k, args[k])))
    return findings


# --------------------------------------------------------------------------
# Check 3: FMA contraction in DAS kernel TUs

FMA_TOKEN = re.compile(
    r"\b(?:std::fma[fl]?|fmaf?|__builtin_fma[fl]?"
    r"|_mm\d*_(?:mask_|maskz_)?fn?m(?:add|sub)[a-z0-9_]*"
    r"|vfma[a-z0-9_]*|vmla[a-z0-9_]*)\b")


def check_no_fma(path, text):
    findings = []
    clean = strip_strings(strip_comments(text))
    for match in FMA_TOKEN.finditer(clean):
        findings.append(
            (path, line_of(clean, match.start()),
             "`%s` in a DAS kernel TU: fused multiply-add rounds once and "
             "breaks cross-backend bit-exactness" % match.group(0)))
    return findings


# --------------------------------------------------------------------------
# Check 4: raw std synchronisation primitives outside annotated_mutex.h

RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable"
    r"|condition_variable_any|lock_guard|unique_lock|scoped_lock)\b")


def check_no_raw_mutex(path, text):
    findings = []
    clean = strip_strings(strip_comments(text))
    for match in RAW_MUTEX.finditer(clean):
        findings.append(
            (path, line_of(clean, match.start()),
             "`%s` bypasses the annotated us3d::Mutex wrappers "
             "(common/annotated_mutex.h); -Wthread-safety cannot see it" %
             match.group(0)))
    return findings


# --------------------------------------------------------------------------
# Check 5: to_json keys must round-trip through the strict from_json

EMITTED_KEY = re.compile(r"\.(?:kv(?:_raw)?|key)\(\s*\"([^\"]+)\"")
PARSED_KEY = re.compile(r"key\s*==\s*\"([^\"]+)\"")


def check_json_contract(path, text):
    clean = strip_comments(text)
    if "from_json" not in clean or "to_json" not in clean:
        return []
    parsed = set(PARSED_KEY.findall(clean))
    if not parsed:
        return []  # from_json only mentioned (a call), not implemented here
    findings = []
    for match in EMITTED_KEY.finditer(clean):
        key = match.group(1)
        if key not in parsed:
            findings.append(
                (path, line_of(clean, match.start()),
                 "to_json emits \"%s\" but the strict from_json in this "
                 "file never parses it, so the document cannot round-trip" %
                 key))
    return findings


# --------------------------------------------------------------------------
# Repo scanning

DAS_KERNEL_TU = re.compile(
    r"^src/(?:simd/das_[a-z0-9_]+|beamform/(?:das_kernel|quantized))\.cpp$")
RAW_MUTEX_EXEMPT = "src/common/annotated_mutex.h"


def iter_sources(root, subdirs):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".cpp")):
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root).replace(os.sep, "/")


def lint_repo(root):
    findings = []
    for rel in iter_sources(root, ["src", "tests", "bench", "examples"]):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
        findings.extend(check_trace_literals(rel, text))
        findings.extend(check_event_literals(rel, text))
        if DAS_KERNEL_TU.match(rel):
            findings.extend(check_no_fma(rel, text))
        if rel.startswith("src/") and rel != RAW_MUTEX_EXEMPT:
            findings.extend(check_no_raw_mutex(rel, text))
        if rel.startswith("src/"):
            findings.extend(check_json_contract(rel, text))
    return findings


# --------------------------------------------------------------------------
# Self-test: run each check against the checked-in fixtures. Fixture paths
# do not match the repo scoping rules (they live under tools/), so the
# self-test injects each fixture into the check it exercises directly.

FIXTURES = {
    # fixture file -> (check function, expects_findings)
    "bad_trace_name.cpp": (check_trace_literals, True),
    "bad_event_name.cpp": (check_event_literals, True),
    "bad_fma_kernel.cpp": (check_no_fma, True),
    "bad_neon_fma_kernel.cpp": (check_no_fma, True),
    "bad_raw_mutex.cpp": (check_no_raw_mutex, True),
    "bad_json_contract.cpp": (check_json_contract, True),
}
ALL_CHECKS = (check_trace_literals, check_event_literals, check_no_fma,
              check_no_raw_mutex, check_json_contract)


def self_test(root):
    fixture_dir = os.path.join(root, "tools", "lint_fixtures")
    failures = []
    for name, (check, expects) in sorted(FIXTURES.items()):
        path = os.path.join(fixture_dir, name)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        found = check(name, text)
        if expects and not found:
            failures.append("%s: expected findings from %s, got none" %
                            (name, check.__name__))
        if not expects and found:
            failures.append("%s: expected clean, got %r" % (name, found))
    # The clean fixture must pass EVERY check.
    clean_path = os.path.join(fixture_dir, "good_clean.cpp")
    with open(clean_path, encoding="utf-8") as f:
        clean_text = f.read()
    for check in ALL_CHECKS:
        found = check("good_clean.cpp", clean_text)
        if found:
            failures.append("good_clean.cpp: %s flagged %r" %
                            (check.__name__, found))
    if failures:
        for f in failures:
            print("SELF-TEST FAIL:", f)
        return 1
    print("lint_us3d self-test: %d fixtures, all checks behave" %
          (len(FIXTURES) + 1))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checks against tools/lint_fixtures/")
    opts = parser.parse_args(argv)
    root = opts.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if opts.self_test:
        return self_test(root)
    findings = lint_repo(root)
    for path, line, message in findings:
        print("%s:%d: %s" % (path, line, message))
    if findings:
        print("lint_us3d: %d finding(s)" % len(findings))
        return 1
    print("lint_us3d: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
